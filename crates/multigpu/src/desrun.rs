//! Discrete-event execution of the pipeline schedule.
//!
//! This module hands the *exact same* block-level dataflow that
//! [`crate::pipeline`] executes on CPU threads to the deterministic
//! schedule engine in `megasw-gpusim`, with durations taken from the
//! calibrated device and link models. The output is the paper-comparable
//! performance picture: simulated GCUPS, per-device utilization and the
//! sensitivity to circular-buffer capacity.
//!
//! ## Task graph
//!
//! For slab `s` and block-row `r`:
//!
//! * `K[s][r]` — a kernel launch on device `s`'s compute stream covering
//!   the whole block-row (parallel width = the slab's tile columns).
//!   Depends on `T[s−1][r]` (its left border arriving); FIFO ordering
//!   supplies the `K[s][r−1]` dependency.
//! * `T[s][r]` — the border transfer on the link between `s` and `s + 1`.
//!   Depends on `K[s][r]` (the border exists) and, for **backpressure**, on
//!   `K[s+1][r − capacity]` (a ring slot is free only once the consumer has
//!   retired an older border). This models the circular buffer one row
//!   conservatively (slot freed at the consuming kernel's *finish*), which
//!   slightly understates tiny capacities and leaves the ≥ 2 shape intact.
//!
//! ## Bulk-synchronous variant
//!
//! [`run_des_bulk`] removes the fine-grain pipelining: device `s + 1` may
//! start only after device `s` has finished its whole slab and shipped the
//! entire border column in one transfer. This is the non-overlapped
//! baseline the overlap-ablation figure contrasts against.

use crate::checkpoint::RecoveryPolicy;
use crate::config::{PartitionPolicy, PruneMode, RebalanceMode, RunConfig};
use crate::partition::{make_slabs, make_slabs_excluding_with_weights, resplit_slabs, Slab};
use crate::pipeline::{FaultPhase, FaultSchedule, PipelineError};
use crate::stats::{
    DeviceReport, PruningReport, RebalanceReport, RecoveryReport, RunReport, StallAttribution,
};
use megasw_gpusim::{
    ClockDrift, KernelModel, Platform, ResourceId, Schedule, SimTime, SpanKind, TaskId,
};
use megasw_obs::{LiveTelemetry, ObsKind, ObsSpan, Recorder, StallPhase};
use std::sync::Arc;

// The stall accounting moved to `stats` so both backends share one type;
// re-exported here for the old import path.
pub use crate::stats::StallBreakdown;

/// Border payload in bytes for a segment of the given height: `H` and `E`
/// lanes, `(height + 1)` entries each, 4 bytes per entry (mirrors
/// [`megasw_sw::border::ColBorder::transfer_bytes`]).
fn border_bytes(height: usize) -> u64 {
    2 * (height as u64 + 1) * 4
}

/// A device dropping out of the simulated chain (fault injection): which
/// device, at which block-row, and at which simulated instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceLossEvent {
    pub device: usize,
    pub block_row: usize,
    /// Simulated time of the loss, on the run's cumulative clock (offsets
    /// from earlier recovered attempts included).
    pub at: SimTime,
}

/// A completed simulation: the report plus the raw schedule for trace
/// analysis (Gantt rendering, span statistics), the per-device memory
/// verdict and the idle-time breakdown.
pub struct DesRun {
    pub report: RunReport,
    /// The final (surviving) attempt's schedule. Recovered runs rebuilt the
    /// task graph per attempt; earlier attempts' schedules are folded into
    /// the time offset and are not retained.
    pub schedule: Schedule,
    /// Per-slab memory footprints, or the first device that does not fit.
    pub memory: Result<Vec<crate::memory::DeviceMemoryPlan>, crate::memory::MemoryError>,
    /// Per-slab idle breakdown, in slab order (final attempt).
    pub stalls: Vec<StallBreakdown>,
    /// Every injected device loss, in simulated-time order. Pair with
    /// [`megasw_gpusim::SpanKind::DeviceLoss`] when rendering Gantt charts.
    pub losses: Vec<DeviceLossEvent>,
    /// `Some` when the simulated run did not complete: a fault fired with
    /// recovery disabled, the failure budget was exhausted, or no survivor
    /// remained — the DES mirror of the threaded pipeline returning `Err`.
    pub aborted: Option<PipelineError>,
}

/// Builder for one discrete-event simulation — the simulated-time mirror of
/// [`crate::pipeline::PipelineRun`].
///
/// ```
/// use megasw_multigpu::desrun::DesSim;
/// use megasw_multigpu::config::RunConfig;
/// use megasw_gpusim::Platform;
///
/// let run = DesSim::new(1 << 20, 1 << 20, &Platform::env2())
///     .config(RunConfig::paper_default())
///     .run();
/// assert!(run.report.gcups_sim.unwrap() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DesSim<'a> {
    m: usize,
    n: usize,
    platform: &'a Platform,
    config: RunConfig,
    bulk: bool,
    faults: FaultSchedule,
    recovery: Option<RecoveryPolicy>,
    observer: Recorder,
    live: Option<Arc<LiveTelemetry>>,
    identity: f64,
    drifts: Vec<ClockDrift>,
}

impl<'a> DesSim<'a> {
    /// Simulate an `m × n` matrix on `platform`. Defaults:
    /// [`RunConfig::paper_default`], fine-grain pipelining, no observer.
    pub fn new(m: usize, n: usize, platform: &'a Platform) -> DesSim<'a> {
        DesSim {
            m,
            n,
            platform,
            config: RunConfig::paper_default(),
            bulk: false,
            faults: FaultSchedule::default(),
            recovery: None,
            observer: Recorder::disabled(),
            live: None,
            identity: 0.25,
            drifts: Vec::new(),
        }
    }

    /// Block geometry, ring capacity, partition policy and score scheme.
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Simulate the bulk-synchronous (non-overlapped) baseline instead of
    /// the fine-grain pipeline.
    pub fn bulk(mut self, bulk: bool) -> Self {
        self.bulk = bulk;
        self
    }

    /// Inject a deterministic fault schedule, mirroring
    /// [`crate::pipeline::PipelineRun::faults`]. A `RingPop`/`Compute`
    /// fault fires at the simulated *start* of the victim kernel; a
    /// `RingPush`/`Transfer` fault at its *finish*. Fine-grain mode only —
    /// the bulk baseline ignores faults.
    pub fn faults(mut self, faults: impl Into<FaultSchedule>) -> Self {
        self.faults = faults.into();
        self
    }

    /// Enable simulated fault tolerance, mirroring
    /// [`crate::pipeline::PipelineRun::recover`]: on a device loss the
    /// schedule is rebuilt over the survivors from the newest complete
    /// checkpoint wave, and the lost attempt's simulated time is folded
    /// into the run's cumulative clock. The recovery pause itself is
    /// treated as free (host-side work, negligible next to the GPU
    /// timeline).
    pub fn recover(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Attach a span recorder; the simulator records `Kernel` and
    /// `BorderXfer` spans with **simulated-time** timestamps.
    pub fn observer(mut self, observer: Recorder) -> Self {
        self.observer = observer;
        self
    }

    /// Modeled sequence identity (fraction of matching bases along the main
    /// diagonal), in `[0, 1]`; drives the analytic pruning mirror when the
    /// config's [`PruneMode`] is enabled, and is ignored otherwise. The
    /// default (0.25) models unrelated DNA, where the diagonal score never
    /// grows and pruning finds nothing to skip.
    pub fn identity(mut self, q: f64) -> Self {
        self.identity = q.clamp(0.0, 1.0);
        self
    }

    /// Inject a deterministic clock-drift step: the device's effective
    /// clock is scaled by `drift.factor` from `drift.after_row` on (see
    /// [`ClockDrift`]). Models a board thermally throttling or a neighbour
    /// tenant stealing its PCIe/SM budget mid-run — the scenario the
    /// checkpoint-boundary rebalance controller exists for. Repeat to stack
    /// several drifts; factors multiply where they overlap.
    pub fn drift(mut self, drift: ClockDrift) -> Self {
        self.drifts.push(drift);
        self
    }

    /// Attach in-flight telemetry. Build the handle with
    /// [`LiveTelemetry::with_manual_clock`]: the simulator replays kernel
    /// completions in simulated-finish order, advancing the manual clock at
    /// each simulated-time boundary, so sampled GCUPS read in simulated
    /// seconds like the rest of the DES reporting. (The schedule solve
    /// itself is instantaneous; replay happens right after, which still
    /// exercises exactly the sampler/renderer path the threaded backend
    /// uses.)
    pub fn live(mut self, live: Arc<LiveTelemetry>) -> Self {
        self.live = Some(live);
        self
    }

    /// Execute the simulation.
    pub fn run(self) -> DesRun {
        let slabs = make_slabs(
            self.n,
            self.config.block_w,
            self.platform,
            &self.config.policy.partition,
        );
        let mode = if self.bulk {
            Mode::BulkSynchronous
        } else {
            Mode::FineGrain
        };
        let env = DesEnv {
            m: self.m,
            n: self.n,
            platform: self.platform,
            config: &self.config,
            obs: &self.observer,
            live: self.live.as_ref(),
            // The bulk baseline never prunes: its whole-slab kernels have
            // no per-tile skip to model.
            prune_mode: if self.bulk {
                PruneMode::Off
            } else {
                self.config.policy.pruning
            },
            identity: self.identity,
            drifts: &self.drifts,
        };
        if mode == Mode::FineGrain
            && self.m > 0
            && !slabs.is_empty()
            && (!self.faults.is_empty() || self.recovery.is_some())
        {
            // Fault injection takes precedence: the fault/recovery mirror
            // does not model rebalancing (the threaded backend covers that
            // composition bit-exactly).
            run_with_faults(&env, &slabs, &self.faults, self.recovery)
        } else if mode == Mode::FineGrain
            && self.m > 0
            && !slabs.is_empty()
            && self.config.policy.rebalance.is_enabled()
        {
            run_rebalanced(&env, &slabs)
        } else {
            run_plain(&env, &slabs, mode, self.recovery)
        }
    }
}

/// Simulate the fine-grain pipeline for an `m × n` matrix on `platform`.
///
/// Pure timing — no DP cells are computed. Correctness of the schedule's
/// dataflow is established separately by the threaded runtime. Thin wrapper
/// over [`DesSim`].
pub fn run_des(m: usize, n: usize, platform: &Platform, config: &RunConfig) -> DesRun {
    DesSim::new(m, n, platform).config(config.clone()).run()
}

/// Simulate the bulk-synchronous (non-overlapped) baseline. Thin wrapper
/// over [`DesSim`] with `.bulk(true)`.
pub fn run_des_bulk(m: usize, n: usize, platform: &Platform, config: &RunConfig) -> DesRun {
    DesSim::new(m, n, platform)
        .config(config.clone())
        .bulk(true)
        .run()
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    FineGrain,
    BulkSynchronous,
}

/// The immutable context every simulated attempt shares.
struct DesEnv<'a> {
    m: usize,
    n: usize,
    platform: &'a Platform,
    config: &'a RunConfig,
    obs: &'a Recorder,
    live: Option<&'a Arc<LiveTelemetry>>,
    /// Effective pruning mode ([`PruneMode::Off`] for the bulk baseline).
    prune_mode: PruneMode,
    /// Modeled sequence identity feeding the pruning mirror.
    identity: f64,
    /// Injected clock-drift steps; kernel durations are scaled by the
    /// product of every drift applying at (device, block-row).
    drifts: &'a [ClockDrift],
}

/// One slab-row's modeled pruning outcome.
#[derive(Debug, Default, Clone, Copy)]
struct RowPrune {
    pruned_tiles: u64,
    total_tiles: u64,
    /// Cells of tiles that still run (what the kernel duration models).
    computed_cells: u64,
    /// Cells covered by skipped tiles.
    skipped_cells: u64,
    /// Tile columns that still run (the kernel's parallel width).
    unpruned_blocks: u32,
}

/// Analytic mirror of the distributed pruning protocol for the timing-only
/// backend (DESIGN.md §10). The DES computes no DP cells, so it cannot
/// observe real scores; instead it models them: sequence identity `q` gives
/// an expected per-base score along the main diagonal
/// (`q·match + (1−q)·mismatch`, clamped at 0), the modeled best score grows
/// linearly along that diagonal, watermarks propagate with the protocol's
/// lag (own-slab observation immediately, the global side channel one
/// publish step late, in wavefront order), and a tile is pruned exactly
/// when the real bound test would prune it under those modeled scores.
/// Strictly inert at [`PruneMode::Off`]: `new` returns `None` and no
/// schedule duration changes.
struct PruneModel<'a> {
    m: usize,
    n: usize,
    block_h: usize,
    block_w: usize,
    match_score: f64,
    per_base: f64,
    mode: PruneMode,
    slabs: &'a [Slab],
    /// `published[t]`: modeled global watermark visible at wavefront step
    /// `t` (= slab index + block-row), already one publish step stale.
    published: Vec<f64>,
}

impl<'a> PruneModel<'a> {
    fn new(env: &DesEnv<'_>, slabs: &'a [Slab]) -> Option<PruneModel<'a>> {
        if !env.prune_mode.is_enabled() || env.m == 0 || slabs.is_empty() {
            return None;
        }
        let (m, n, config) = (env.m, env.n, env.config);
        let scheme = &config.scheme;
        let per_base = (env.identity * scheme.match_score as f64
            + (1.0 - env.identity) * scheme.mismatch_score as f64)
            .max(0.0);
        let rows = m.div_ceil(config.block_h);
        let steps = rows + slabs.len() + 1;
        let mut published = vec![0.0f64; steps];
        if env.prune_mode == PruneMode::Distributed {
            for r in 0..rows {
                let d = ((r + 1) * config.block_h).min(m).min(n);
                let owner = slabs
                    .iter()
                    .position(|s| d < s.j_end())
                    .unwrap_or(slabs.len() - 1);
                let t = owner + r + 1;
                if t < steps {
                    published[t] = published[t].max(per_base * d as f64);
                }
            }
            for t in 1..steps {
                published[t] = published[t].max(published[t - 1]);
            }
        }
        Some(PruneModel {
            m,
            n,
            block_h: config.block_h,
            block_w: config.block_w,
            match_score: scheme.match_score as f64,
            per_base,
            mode: env.prune_mode,
            slabs,
            published,
        })
    }

    /// The watermark slab `s` holds entering block-row `r`: what it has
    /// observed of the diagonal inside its own columns, plus (distributed
    /// mode) the stale global side channel.
    fn watermark(&self, s: usize, r: usize) -> f64 {
        let slab = &self.slabs[s];
        let dprev = (r * self.block_h).min(self.m).min(self.n);
        let own = if dprev >= slab.j0 {
            self.per_base * dprev.min(slab.j_end() - 1) as f64
        } else {
            0.0
        };
        if self.mode == PruneMode::Distributed {
            own.max(self.published[(s + r).min(self.published.len() - 1)])
        } else {
            own
        }
    }

    /// Modeled pruning outcome for slab `s`, block-row `r`, applying the
    /// real bound test tile by tile (incoming max modeled as 0 away from
    /// the diagonal band, unboundedly high inside it).
    fn row(&self, s: usize, r: usize) -> RowPrune {
        let slab = &self.slabs[s];
        let i0 = r * self.block_h + 1;
        let i1 = ((r + 1) * self.block_h).min(self.m);
        let height = (i1 + 1 - i0) as u64;
        let wm = self.watermark(s, r);
        let band_lo = i0.saturating_sub(self.block_h);
        let band_hi = i1 + self.block_h;
        let mut out = RowPrune::default();
        let mut j = slab.j0;
        while j < slab.j_end() {
            let w = self.block_w.min(slab.j_end() - j);
            out.total_tiles += 1;
            let near_diag = j <= band_hi && j + w > band_lo;
            let remaining = (self.m - (i0 - 1)).min(self.n - (j - 1)) as f64;
            if !near_diag && self.match_score * remaining < wm {
                out.pruned_tiles += 1;
                out.skipped_cells += height * w as u64;
            } else {
                out.unpruned_blocks += 1;
                out.computed_cells += height * w as u64;
            }
            j += w;
        }
        out
    }

    /// Run-level totals plus the modeled watermark lag.
    fn report(&self) -> PruningReport {
        let rows = self.m.div_ceil(self.block_h);
        let mut tiles_pruned = 0u64;
        let mut tiles_total = 0u64;
        let mut cells_skipped = 0u128;
        let mut min_wm = f64::INFINITY;
        for s in 0..self.slabs.len() {
            for r in 0..rows {
                let rp = self.row(s, r);
                tiles_pruned += rp.pruned_tiles;
                tiles_total += rp.total_tiles;
                cells_skipped += rp.skipped_cells as u128;
            }
            min_wm = min_wm.min(self.watermark(s, rows));
        }
        let best = self.per_base * self.m.min(self.n) as f64;
        PruningReport {
            mode: self.mode,
            tiles_pruned,
            tiles_total,
            cells_skipped,
            watermark_lag: (best - min_wm).max(0.0).round() as i64,
        }
    }
}

/// One attempt's scheduled task graph, before any reporting.
struct TaskGraph {
    schedule: Schedule,
    computes: Vec<ResourceId>,
    /// `kernel_tasks[s][r - start_row]` — kernels per slab, in row order.
    kernel_tasks: Vec<Vec<TaskId>>,
    transfer_tasks: Vec<Vec<TaskId>>,
    start_row: usize,
}

/// Build (and solve) the task graph for block-rows `start_row..end_row`
/// over the given slab set. Fault-free runs span `0..rows`; resumed
/// attempts start at the checkpoint wave; rebalance segments stop at the
/// next boundary.
fn build_task_graph(
    env: &DesEnv<'_>,
    slabs: &[Slab],
    mode: Mode,
    start_row: usize,
    end_row: usize,
) -> TaskGraph {
    let (m, platform, config) = (env.m, env.platform, env.config);
    let mut schedule = Schedule::new();
    let nrows = end_row - start_row;
    let cap = config.buffer_capacity;

    let computes: Vec<_> = slabs
        .iter()
        .map(|s| schedule.add_resource(format!("gpu{} compute", s.device)))
        .collect();
    // Independent per-pair links, or one shared host bridge every border
    // transfer serializes through.
    let links: Vec<_> = if platform.bridge.is_some() {
        let shared = schedule.add_resource("host bridge");
        vec![shared; slabs.len().saturating_sub(1)]
    } else {
        (0..slabs.len().saturating_sub(1))
            .map(|i| {
                schedule.add_resource(format!("link {}→{}", slabs[i].device, slabs[i + 1].device))
            })
            .collect()
    };
    let models: Vec<KernelModel> = slabs
        .iter()
        .map(|s| KernelModel::new(platform.devices[s.device].clone()))
        .collect();

    // kernel_tasks[s][rel], transfer_tasks[s][rel] with rel = r − start_row
    let mut kernel_tasks: Vec<Vec<TaskId>> = vec![Vec::with_capacity(nrows); slabs.len()];
    let mut transfer_tasks: Vec<Vec<TaskId>> = vec![Vec::with_capacity(nrows); slabs.len()];

    let prune = PruneModel::new(env, slabs);

    match mode {
        Mode::FineGrain => {
            // Tasks are created along anti-diagonals of the (row, slab)
            // plane — the order in which they actually become ready. This
            // matters for FIFO resources shared by several slab pairs (the
            // host bridge): row-major creation would let a not-yet-ready
            // transfer from a deep pipeline stage block ready transfers
            // from earlier stages, which no real DMA arbiter does.
            // Per-resource orders for compute streams and per-pair links
            // are unchanged by this traversal.
            let g = slabs.len();
            for d in 0..nrows + g - 1 {
                // Kernels of this wavefront…
                for (s, slab) in slabs.iter().enumerate() {
                    let Some(rel) = d.checked_sub(s).filter(|rel| *rel < nrows) else {
                        continue;
                    };
                    let r = start_row + rel;
                    let height = row_height(m, config.block_h, r);
                    // A pruned tile costs no kernel time: the launch covers
                    // only the surviving tile columns.
                    let (blocks, cells) = match &prune {
                        Some(pm) => {
                            let rp = pm.row(s, r);
                            (rp.unpruned_blocks, rp.computed_cells)
                        }
                        None => (
                            slab.width.div_ceil(config.block_w) as u32,
                            height as u64 * slab.width as u64,
                        ),
                    };
                    let mut deps: Vec<TaskId> = Vec::with_capacity(1);
                    if s > 0 {
                        deps.push(transfer_tasks[s - 1][rel]);
                    }
                    let k = schedule.add_task(
                        computes[s],
                        &deps,
                        models[s].launch_time_scaled(
                            blocks,
                            cells,
                            drift_scale(env, slab.device, r),
                        ),
                        SpanKind::Kernel,
                        r as u64,
                    );
                    kernel_tasks[s].push(k);
                }
                // …then their outgoing transfers.
                for s in 0..g.saturating_sub(1) {
                    let Some(rel) = d.checked_sub(s).filter(|rel| *rel < nrows) else {
                        continue;
                    };
                    let r = start_row + rel;
                    let height = row_height(m, config.block_h, r);
                    let link = platform
                        .bridge
                        .unwrap_or_else(|| link_between_slabs(platform, slabs, s));
                    let mut tdeps = vec![kernel_tasks[s][rel]];
                    if rel >= cap {
                        // Backpressure: a ring slot frees once the consumer
                        // retires border rel − cap (rings are per-attempt,
                        // so the window is relative to the attempt start).
                        tdeps.push(kernel_tasks[s + 1][rel - cap]);
                    }
                    let t = schedule.add_task(
                        links[s],
                        &tdeps,
                        link.transfer_time(border_bytes(height)),
                        SpanKind::CopyOut,
                        r as u64,
                    );
                    transfer_tasks[s].push(t);
                }
            }
        }
        Mode::BulkSynchronous => {
            // Device s computes its whole slab as a dense run of kernels,
            // then ships the full border column in one transfer; device
            // s + 1 starts only after that arrives.
            debug_assert_eq!(start_row, 0, "bulk mode never resumes");
            let mut prev_arrival: Option<TaskId> = None;
            for (s, slab) in slabs.iter().enumerate() {
                let blocks = slab.width.div_ceil(config.block_w) as u32;
                let mut last_kernel = None;
                for r in 0..end_row {
                    let height = row_height(m, config.block_h, r);
                    let cells = height as u64 * slab.width as u64;
                    let deps: Vec<TaskId> = if r == 0 {
                        prev_arrival.into_iter().collect()
                    } else {
                        Vec::new()
                    };
                    let k = schedule.add_task(
                        computes[s],
                        &deps,
                        models[s].launch_time_scaled(
                            blocks,
                            cells,
                            drift_scale(env, slab.device, r),
                        ),
                        SpanKind::Kernel,
                        r as u64,
                    );
                    kernel_tasks[s].push(k);
                    last_kernel = Some(k);
                }
                if s + 1 < slabs.len() {
                    let link = platform
                        .bridge
                        .unwrap_or_else(|| link_between_slabs(platform, slabs, s));
                    let t = schedule.add_task(
                        links[s],
                        &[last_kernel.expect("rows >= 1")],
                        link.transfer_time(border_bytes(m)),
                        SpanKind::CopyOut,
                        0,
                    );
                    transfer_tasks[s].push(t);
                    prev_arrival = Some(t);
                }
            }
        }
    }

    TaskGraph {
        schedule,
        computes,
        kernel_tasks,
        transfer_tasks,
        start_row,
    }
}

/// Combined clock scale for `device` at block-row `r`: the product of
/// every injected drift step that applies (1.0 with none).
fn drift_scale(env: &DesEnv<'_>, device: usize, r: usize) -> f64 {
    env.drifts.iter().map(|d| d.scale_at(device, r)).product()
}

/// The fault-free path (and the bulk baseline): one attempt, no offsets.
fn run_plain(
    env: &DesEnv<'_>,
    slabs: &[Slab],
    mode: Mode,
    policy: Option<RecoveryPolicy>,
) -> DesRun {
    let memory = crate::memory::check_platform(env.m, slabs, env.platform, env.config);
    if env.m == 0 || slabs.is_empty() {
        let report = RunReport {
            best: megasw_sw::BestCell::ZERO,
            total_cells: env.m as u128 * env.n as u128,
            wall_time: None,
            gcups_wall: None,
            sim_time: Some(SimTime::ZERO),
            gcups_sim: Some(0.0),
            devices: Vec::new(),
            pruning: env.prune_mode.is_enabled().then_some(PruningReport {
                mode: env.prune_mode,
                tiles_pruned: 0,
                tiles_total: 0,
                cells_skipped: 0,
                watermark_lag: 0,
            }),
            recovery: policy.map(|_| RecoveryReport::default()),
            rebalance: (mode == Mode::FineGrain && env.config.policy.rebalance.is_enabled())
                .then_some(RebalanceReport::default()),
            kernel: megasw_sw::KernelSelection::modeled(env.config.policy.dispatch),
            simd_rescues: 0,
        };
        return DesRun {
            report,
            schedule: Schedule::new(),
            memory,
            stalls: Vec::new(),
            losses: Vec::new(),
            aborted: None,
        };
    }
    let rows = env.m.div_ceil(env.config.block_h);
    let graph = build_task_graph(env, slabs, mode, 0, rows);
    let recovery = policy.map(|_| RecoveryReport::default());
    let rebalance = (mode == Mode::FineGrain && env.config.policy.rebalance.is_enabled())
        .then_some(RebalanceReport::default());
    finalize(
        env,
        slabs,
        graph,
        mode,
        SimTime::ZERO,
        recovery,
        rebalance,
        Vec::new(),
        memory,
    )
}

/// The checkpoint-boundary rebalance driver — the DES twin of the threaded
/// pipeline's segmented runner. Each segment spans `checkpoint interval ×
/// window_waves` block-rows; at its boundary the controller samples each
/// device's effective throughput from the solved segment schedule (covered
/// cells, net of pruned tiles, per busy simulated nanosecond), predicts the
/// balanced makespan, and re-splits the columns when the predicted relative
/// improvement clears the hysteresis threshold. The hand-off is rewind-free:
/// the next segment's graph starts at the boundary wave over the new slabs,
/// exactly as the threaded workers resume from the boundary checkpoint's
/// full-width border wave.
fn run_rebalanced(env: &DesEnv<'_>, slabs: &[Slab]) -> DesRun {
    let (m, n, config) = (env.m, env.n, env.config);
    let memory = crate::memory::check_platform(m, slabs, env.platform, config);
    let rows = m.div_ceil(config.block_h);
    let RebalanceMode::On {
        threshold,
        window_waves,
    } = config.policy.rebalance
    else {
        unreachable!("run_rebalanced requires RebalanceMode::On");
    };
    // `validate()` guarantees a cadence exists when rebalance is on.
    let interval = config
        .policy
        .checkpoint
        .rows_interval()
        .expect("rebalance requires a checkpoint cadence");
    let seg_rows = (interval * window_waves).clamp(1, rows);

    let mut cur: Vec<Slab> = slabs.to_vec();
    let mut start_row = 0usize;
    let mut offset = SimTime::ZERO;
    let mut rb = RebalanceReport::default();

    loop {
        let stop_row = ((start_row / seg_rows + 1) * seg_rows).min(rows);
        let graph = build_task_graph(env, &cur, Mode::FineGrain, start_row, stop_row);
        if stop_row >= rows {
            return finalize(
                env,
                &cur,
                graph,
                Mode::FineGrain,
                offset,
                None,
                Some(rb),
                Vec::new(),
                memory,
            );
        }
        let makespan = graph.schedule.makespan();
        rb.evaluations += 1;
        // Effective throughput over the segment. The graph already priced
        // pruned tiles at zero kernel time, so covered cells must likewise
        // exclude them or a heavily-pruned slab would look faster than its
        // silicon.
        let prune = PruneModel::new(env, &cur);
        let rates: Vec<f64> = cur
            .iter()
            .enumerate()
            .map(|(s, slab)| {
                let cells: u64 = (start_row..stop_row)
                    .map(|r| match &prune {
                        Some(pm) => pm.row(s, r).computed_cells,
                        None => row_height(m, config.block_h, r) as u64 * slab.width as u64,
                    })
                    .sum();
                let busy = graph.schedule.busy_of(graph.computes[s]).as_nanos().max(1);
                cells as f64 / busy as f64
            })
            .collect();
        let sum: f64 = rates.iter().sum();
        let t_static = cur
            .iter()
            .zip(&rates)
            .map(|(slab, r)| slab.width as f64 / r.max(f64::MIN_POSITIVE))
            .fold(0.0f64, f64::max);
        let t_balanced = n as f64 / sum.max(f64::MIN_POSITIVE);
        let improvement = 1.0 - t_balanced / t_static.max(f64::MIN_POSITIVE);
        if improvement >= threshold {
            let devices: Vec<usize> = cur.iter().map(|s| s.device).collect();
            let new_slabs = resplit_slabs(n, config.block_w, &devices, &rates);
            // Widths sum to `n` on both sides, so half the total absolute
            // delta is exactly the columns that changed hands.
            let moved: usize = cur
                .iter()
                .zip(&new_slabs)
                .map(|(a, b)| a.width.abs_diff(b.width))
                .sum::<usize>()
                / 2;
            if moved > 0 {
                rb.migrations += 1;
                rb.moved_columns += moved as u64;
                rb.applied_at_rows.push(stop_row);
                if env.obs.is_enabled() {
                    let at = (offset + makespan).as_nanos();
                    env.obs.record(ObsSpan {
                        kind: ObsKind::Rebalance,
                        device: None,
                        block_row: Some(stop_row as u32),
                        start_ns: at,
                        end_ns: at,
                    });
                }
                cur = new_slabs;
            }
        }
        offset += makespan;
        start_row = stop_row;
    }
}

/// The fault-injecting / recovering driver — the DES twin of
/// [`crate::pipeline::run_pipeline_recover_live`]. Per attempt it solves
/// the survivor schedule, finds the earliest scheduled fault that applies,
/// and (with a policy) rewinds to the newest complete checkpoint wave:
/// with every slab's checkpoint deposited at its kernel's simulated finish,
/// a wave is complete once min-over-slabs of consecutively finished
/// kernels reaches it. The lost attempt's simulated time up to the fault is
/// folded into a cumulative offset; the recovery pause itself is free.
fn run_with_faults(
    env: &DesEnv<'_>,
    slabs: &[Slab],
    faults: &FaultSchedule,
    policy: Option<RecoveryPolicy>,
) -> DesRun {
    let (m, n, config) = (env.m, env.n, env.config);
    let memory = crate::memory::check_platform(m, slabs, env.platform, config);
    let rows = m.div_ceil(config.block_h);
    let block_h = config.block_h;
    let cells_at = |row: usize| ((row * block_h).min(m) as u128) * n as u128;

    // Mirror of the threaded pipeline: recovery without a checkpoint
    // cadence cannot make progress after a fault and is rejected up front.
    let ck_rows = match config.policy.checkpoint.rows_interval() {
        Some(iv) => iv,
        None if policy.is_some() => {
            let empty = TaskGraph {
                schedule: Schedule::new(),
                computes: Vec::new(),
                kernel_tasks: Vec::new(),
                transfer_tasks: Vec::new(),
                start_row: 0,
            };
            return aborted_run(
                env,
                empty,
                SimTime::ZERO,
                Some(RecoveryReport::default()),
                Vec::new(),
                Some(PipelineError::InvalidConfig(
                    "recovery requires a checkpoint cadence (policy.checkpoint must not be Disabled)"
                        .to_string(),
                )),
                memory,
            );
        }
        None => usize::MAX,
    };

    let mut cur: Vec<Slab> = slabs.to_vec();
    let mut blacklist: Vec<usize> = Vec::new();
    let mut start_row = 0usize;
    let mut offset = SimTime::ZERO;
    let mut recovery = RecoveryReport::default();
    let mut best_wave = 0usize;
    let mut failures = 0usize;
    let mut losses: Vec<DeviceLossEvent> = Vec::new();
    // Probed once, reused across every repartition of this run.
    let mut calibrated: Option<Vec<f64>> = None;

    loop {
        let graph = build_task_graph(env, &cur, Mode::FineGrain, start_row, rows);
        let Some((device, block_row, t_fail)) =
            earliest_fault(&graph, &cur, faults, start_row, rows, &blacklist)
        else {
            // No applicable fault left: this attempt completes. Every slab
            // deposits every remaining wave of the matrix.
            if policy.is_some() {
                let waves = (start_row + 1..rows).filter(|w| w % ck_rows == 0).count() as u64;
                recovery.checkpoints_taken += waves * cur.len() as u64;
            }
            let rec = policy.map(|_| recovery);
            return finalize(
                env,
                &cur,
                graph,
                Mode::FineGrain,
                offset,
                rec,
                None,
                losses,
                memory,
            );
        };

        losses.push(DeviceLossEvent {
            device,
            block_row,
            at: offset + t_fail,
        });

        // Checkpoints this attempt deposited before the fault: one per
        // slab per interval-multiple wave its kernels retired by t_fail.
        // Also the rewind frontier: a wave is complete once *every* slab
        // has deposited it.
        let mut frontier = rows;
        let mut attempt_cells: u128 = 0;
        for (slab, tasks) in cur.iter().zip(&graph.kernel_tasks) {
            let mut done = 0usize;
            for (rel, &k) in tasks.iter().enumerate() {
                if graph.schedule.finish_of(k) > t_fail {
                    break;
                }
                done = rel + 1;
                attempt_cells +=
                    row_height(m, block_h, start_row + rel) as u128 * slab.width as u128;
            }
            if policy.is_some() {
                recovery.checkpoints_taken += (start_row + 1..=start_row + done)
                    .filter(|w| w % ck_rows == 0 && *w < rows)
                    .count() as u64;
            }
            frontier = frontier.min(start_row + done);
        }

        let aborted = Some(PipelineError::DeviceFault { device, block_row });
        let Some(p) = policy else {
            // Fail-fast mirror of the threaded pipeline without `.recover`.
            return aborted_run(env, graph, offset + t_fail, None, losses, aborted, memory);
        };
        failures += 1;
        if failures > p.max_device_failures {
            return aborted_run(
                env,
                graph,
                offset + t_fail,
                Some(recovery),
                losses,
                aborted,
                memory,
            );
        }
        blacklist.push(device);
        let measured = match config.policy.partition {
            PartitionPolicy::Proportional => Some(
                calibrated
                    .get_or_insert_with(|| crate::balance::default_weights(env.platform))
                    .as_slice(),
            ),
            _ => None,
        };
        let survivors = make_slabs_excluding_with_weights(
            n,
            config.block_w,
            env.platform,
            &config.policy.partition,
            &blacklist,
            measured,
        );
        if survivors.is_empty() {
            return aborted_run(
                env,
                graph,
                offset + t_fail,
                Some(recovery),
                losses,
                aborted,
                memory,
            );
        }

        // Newest complete wave: the largest interval multiple the frontier
        // covers (capped below `rows` — the threaded workers never deposit
        // the final border), never older than a previous attempt's wave.
        let mut wave = (frontier / ck_rows) * ck_rows;
        if wave >= rows {
            wave = ((rows - 1) / ck_rows) * ck_rows;
        }
        best_wave = best_wave.max(wave);
        let new_start = best_wave;
        let preserved = cells_at(new_start).saturating_sub(cells_at(start_row));
        recovery.rewound_cells += attempt_cells.saturating_sub(preserved);
        recovery.recoveries += 1;
        recovery.failed_devices.push(device);
        recovery.resumed_from_rows.push(new_start);
        if let Some(live) = env.live {
            live.on_recovery();
        }
        if env.obs.is_enabled() {
            let at = (offset + t_fail).as_nanos();
            env.obs.record(ObsSpan {
                kind: ObsKind::Recovery,
                device: Some(device as u32),
                block_row: Some(block_row as u32),
                start_ns: at,
                end_ns: at,
            });
        }
        offset += t_fail;
        cur = survivors;
        start_row = new_start;
    }
}

/// The earliest scheduled fault that applies to this attempt: its device
/// still holds a slab (and is not blacklisted) and its block-row is inside
/// the attempt's range. `RingPop`/`Compute` faults fire at the victim
/// kernel's simulated start, `RingPush`/`Transfer` at its finish.
fn earliest_fault(
    graph: &TaskGraph,
    slabs: &[Slab],
    faults: &FaultSchedule,
    start_row: usize,
    rows: usize,
    blacklist: &[usize],
) -> Option<(usize, usize, SimTime)> {
    let mut best: Option<(SimTime, usize, usize)> = None;
    for f in &faults.faults {
        if blacklist.contains(&f.device) || f.block_row < start_row || f.block_row >= rows {
            continue;
        }
        let Some(s) = slabs.iter().position(|sl| sl.device == f.device) else {
            continue;
        };
        let k = graph.kernel_tasks[s][f.block_row - start_row];
        let t = match f.phase {
            FaultPhase::RingPop | FaultPhase::Compute => graph.schedule.start_of(k),
            FaultPhase::RingPush | FaultPhase::Transfer => graph.schedule.finish_of(k),
        };
        if best.is_none_or(|(bt, _, _)| t < bt) {
            best = Some((t, f.device, f.block_row));
        }
    }
    best.map(|(t, d, r)| (d, r, t))
}

/// A run that did not complete: simulated time stops at the fault instant;
/// no per-device reporting (the threaded mirror returns `Err` here).
#[allow(clippy::too_many_arguments)]
fn aborted_run(
    env: &DesEnv<'_>,
    graph: TaskGraph,
    at: SimTime,
    recovery: Option<RecoveryReport>,
    losses: Vec<DeviceLossEvent>,
    aborted: Option<PipelineError>,
    memory: Result<Vec<crate::memory::DeviceMemoryPlan>, crate::memory::MemoryError>,
) -> DesRun {
    DesRun {
        report: RunReport {
            best: megasw_sw::BestCell::ZERO,
            total_cells: env.m as u128 * env.n as u128,
            wall_time: None,
            gcups_wall: None,
            sim_time: Some(at),
            gcups_sim: None,
            devices: Vec::new(),
            pruning: None,
            recovery,
            rebalance: None,
            kernel: megasw_sw::KernelSelection::modeled(env.config.policy.dispatch),
            simd_rescues: 0,
        },
        schedule: graph.schedule,
        memory,
        stalls: Vec::new(),
        losses,
        aborted,
    }
}

/// Turn the final attempt's solved graph into the [`DesRun`]: live replay,
/// span export, stall breakdowns and the report. `offset` is the simulated
/// time consumed by earlier (lost) attempts; live/span timelines cover the
/// surviving attempt only, shifted by that offset.
#[allow(clippy::too_many_arguments)]
fn finalize(
    env: &DesEnv<'_>,
    slabs: &[Slab],
    graph: TaskGraph,
    mode: Mode,
    offset: SimTime,
    recovery: Option<RecoveryReport>,
    rebalance: Option<RebalanceReport>,
    losses: Vec<DeviceLossEvent>,
    memory: Result<Vec<crate::memory::DeviceMemoryPlan>, crate::memory::MemoryError>,
) -> DesRun {
    let (m, n, platform, config) = (env.m, env.n, env.platform, env.config);
    let TaskGraph {
        schedule,
        computes,
        kernel_tasks,
        transfer_tasks,
        start_row,
    } = graph;
    let total_cells = m as u128 * n as u128;
    let rows = m.div_ceil(config.block_h);
    let makespan = schedule.makespan();
    let sim_time = offset + makespan;
    let secs = sim_time.as_secs_f64();
    let off_ns = offset.as_nanos();
    let prune_model = PruneModel::new(env, slabs);
    let pruning = prune_model.as_ref().map(|pm| pm.report());

    // Drive the live handle at simulated-time boundaries: every kernel
    // completion, in simulated-finish order, advances the manual clock and
    // books the row it retired.
    if let Some(live) = env.live {
        for (s_idx, tasks) in kernel_tasks.iter().enumerate() {
            live.set_rows_total(s_idx, tasks.len() as u64);
        }
        let mut completions: Vec<(u64, usize, u64, u64)> = Vec::new();
        for (s_idx, (slab, tasks)) in slabs.iter().zip(&kernel_tasks).enumerate() {
            for (rel, &k) in tasks.iter().enumerate() {
                let start = schedule.start_of(k).as_nanos();
                let finish = schedule.finish_of(k).as_nanos();
                let cells =
                    row_height(m, config.block_h, start_row + rel) as u64 * slab.width as u64;
                completions.push((off_ns + finish, s_idx, cells, finish.saturating_sub(start)));
            }
        }
        completions.sort_unstable();
        for (finish_ns, s_idx, cells, dur_ns) in completions {
            live.set_now_ns(finish_ns);
            live.on_row_done(s_idx, cells, dur_ns);
        }
        // Mirror the threaded workers' per-device pruning telemetry with
        // the modeled final values.
        if let Some(pm) = &prune_model {
            for s_idx in 0..slabs.len() {
                let (mut tiles, mut skipped) = (0u64, 0u64);
                for r in 0..rows {
                    let rp = pm.row(s_idx, r);
                    tiles += rp.pruned_tiles;
                    skipped += rp.skipped_cells;
                }
                live.on_prune_update(s_idx, pm.watermark(s_idx, rows) as i32, tiles, skipped);
            }
        }
        live.set_now_ns(sim_time.as_nanos());
    }

    // Span export: simulated-time Kernel and BorderXfer spans, one per
    // scheduled task, attributed to the owning device and block-row.
    if env.obs.is_enabled() {
        for (s, slab) in slabs.iter().enumerate() {
            let dev = slab.device as u32;
            for (rel, &k) in kernel_tasks[s].iter().enumerate() {
                env.obs.record(ObsSpan {
                    kind: ObsKind::Kernel,
                    device: Some(dev),
                    block_row: Some((start_row + rel) as u32),
                    start_ns: off_ns + schedule.start_of(k).as_nanos(),
                    end_ns: off_ns + schedule.finish_of(k).as_nanos(),
                });
            }
            for (rel, &t) in transfer_tasks[s].iter().enumerate() {
                env.obs.record(ObsSpan {
                    kind: ObsKind::BorderXfer,
                    device: Some(dev),
                    block_row: Some((start_row + rel) as u32),
                    start_ns: off_ns + schedule.start_of(t).as_nanos(),
                    end_ns: off_ns + schedule.finish_of(t).as_nanos(),
                });
            }
        }
    }

    // Idle breakdown per device: fill before the first kernel, gaps
    // between kernels (waiting for the left neighbour's borders), and
    // drain after the last.
    let stalls: Vec<StallBreakdown> = kernel_tasks
        .iter()
        .map(|tasks| {
            let mut bd = StallBreakdown::default();
            if let (Some(&first), Some(&last)) = (tasks.first(), tasks.last()) {
                bd.startup = schedule.start_of(first);
                bd.drain = makespan.saturating_sub(schedule.finish_of(last));
                for pair in tasks.windows(2) {
                    bd.input_stalls += schedule
                        .start_of(pair[1])
                        .saturating_sub(schedule.finish_of(pair[0]));
                }
            }
            bd
        })
        .collect();
    // Mirror the threaded workers' live phase attribution: simulated
    // border waits are the DES's only measured stall phase.
    if let Some(live) = env.live {
        for (s_idx, bd) in stalls.iter().enumerate() {
            live.on_phase_ns(s_idx, StallPhase::WaitInput, bd.input_stalls.as_nanos());
        }
    }
    // Rows the final attempt actually covered (all of them, fault-free).
    let height_covered = m - (start_row * config.block_h).min(m);
    let devices = slabs
        .iter()
        .enumerate()
        .map(|(s, slab)| {
            let busy = schedule.busy_of(computes[s]);
            let sent = if s + 1 < slabs.len() {
                match mode {
                    Mode::FineGrain => (start_row..rows)
                        .map(|r| border_bytes(row_height(m, config.block_h, r)))
                        .sum(),
                    Mode::BulkSynchronous => border_bytes(m),
                }
            } else {
                0
            };
            // The DES's attribution mirror: simulated kernel busy time is
            // `compute`, inter-kernel gaps are `wait_input`, and the
            // unmeasured remainder (startup + drain + lost attempts'
            // offset) lands in `other` — the same sum-to-makespan identity
            // as the threaded backend, over `sim_time` as the makespan.
            let attribution = StallAttribution::from_measured(
                sim_time.as_nanos(),
                busy.as_nanos(),
                stalls[s].input_stalls.as_nanos(),
                0,
                0,
                0,
                0,
            );
            DeviceReport {
                device: slab.device,
                name: platform.devices[slab.device].name.clone(),
                slab_j0: slab.j0,
                slab_width: slab.width,
                cells: height_covered as u128 * slab.width as u128,
                bytes_sent: sent,
                ring_out: None,
                wall_busy: None,
                sim_busy: Some(busy),
                sim_utilization: Some(schedule.utilization(computes[s])),
                stall: Some(stalls[s]),
                attribution: Some(attribution),
            }
        })
        .collect();

    let report = RunReport {
        best: megasw_sw::BestCell::ZERO, // timing-only run
        total_cells,
        wall_time: None,
        gcups_wall: None,
        sim_time: Some(sim_time),
        gcups_sim: Some(RunReport::gcups(total_cells, secs)),
        devices,
        pruning,
        recovery,
        rebalance,
        kernel: megasw_sw::KernelSelection::modeled(config.policy.dispatch),
        simd_rescues: 0,
    };
    DesRun {
        report,
        schedule,
        memory,
        stalls,
        losses,
        aborted: None,
    }
}

/// The pipe between the devices owning slabs `s` and `s + 1`: the slower of
/// the two boards' links (a staged copy traverses both).
fn link_between_slabs(platform: &Platform, slabs: &[Slab], s: usize) -> megasw_gpusim::LinkSpec {
    let a = platform.devices[slabs[s].device].link;
    let b = platform.devices[slabs[s + 1].device].link;
    if a.bandwidth_bytes_per_sec <= b.bandwidth_bytes_per_sec {
        a
    } else {
        b
    }
}

fn row_height(m: usize, block_h: usize, r: usize) -> usize {
    let i0 = r * block_h;
    let i1 = ((r + 1) * block_h).min(m);
    i1 - i0
}

/// Convenience sweep used by the scaling figure: simulated GCUPS for
/// 1..=max devices of `platform`.
pub fn gcups_versus_devices(
    m: usize,
    n: usize,
    platform: &Platform,
    config: &RunConfig,
) -> Vec<(usize, f64)> {
    (1..=platform.len())
        .map(|g| {
            let sub = platform.take(g);
            let run = run_des(m, n, &sub, config);
            (g, run.report.gcups_sim.unwrap_or(0.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionPolicy;
    use megasw_gpusim::catalog;

    const MBP: usize = 1_000_000;

    fn cfg() -> RunConfig {
        RunConfig::paper_default()
    }

    #[test]
    fn single_device_approaches_its_peak_on_megabase_input() {
        let p = Platform::single(catalog::gtx680());
        let run = run_des(4 * MBP, 4 * MBP, &p, &cfg());
        let gcups = run.report.gcups_sim.unwrap();
        assert!(gcups > 0.93 * 50.0, "gcups = {gcups}");
        assert!(gcups <= 50.0);
    }

    #[test]
    fn two_homogeneous_devices_scale_nearly_linearly() {
        let p = Platform::env1();
        let one = run_des(4 * MBP, 4 * MBP, &p.take(1), &cfg())
            .report
            .gcups_sim
            .unwrap();
        let two = run_des(4 * MBP, 4 * MBP, &p, &cfg())
            .report
            .gcups_sim
            .unwrap();
        let speedup = two / one;
        assert!(speedup > 1.85, "speedup = {speedup}");
        assert!(speedup <= 2.02);
    }

    #[test]
    fn env2_reaches_paper_scale_gcups() {
        // The headline: three heterogeneous GPUs around 140 GCUPS.
        let p = Platform::env2();
        let run = run_des(8 * MBP, 8 * MBP, &p, &cfg());
        let gcups = run.report.gcups_sim.unwrap();
        assert!(
            (135.0..147.0).contains(&gcups),
            "expected ≈140 GCUPS (paper: 140.36), got {gcups}"
        );
    }

    #[test]
    fn proportional_beats_equal_on_heterogeneous_platform() {
        let p = Platform::env2();
        let prop = run_des(4 * MBP, 4 * MBP, &p, &cfg())
            .report
            .gcups_sim
            .unwrap();
        let equal = run_des(
            4 * MBP,
            4 * MBP,
            &p,
            &cfg().with_partition(PartitionPolicy::Equal),
        )
        .report
        .gcups_sim
        .unwrap();
        assert!(prop > 1.15 * equal, "proportional {prop} vs equal {equal}");
    }

    #[test]
    fn bigger_buffers_help_until_the_knee() {
        let p = Platform::env1();
        let g1 = run_des(2 * MBP, 2 * MBP, &p, &cfg().with_buffer_capacity(1))
            .report
            .gcups_sim
            .unwrap();
        let g8 = run_des(2 * MBP, 2 * MBP, &p, &cfg().with_buffer_capacity(8))
            .report
            .gcups_sim
            .unwrap();
        let g64 = run_des(2 * MBP, 2 * MBP, &p, &cfg().with_buffer_capacity(64))
            .report
            .gcups_sim
            .unwrap();
        assert!(g8 >= g1, "capacity 8 ({g8}) >= capacity 1 ({g1})");
        // Past the knee, returns vanish.
        assert!((g64 - g8).abs() / g8 < 0.02, "g8 = {g8}, g64 = {g64}");
    }

    #[test]
    fn fine_grain_overlap_beats_bulk_synchronous() {
        let p = Platform::env2();
        let fine = run_des(2 * MBP, 2 * MBP, &p, &cfg())
            .report
            .gcups_sim
            .unwrap();
        let bulk = run_des_bulk(2 * MBP, 2 * MBP, &p, &cfg())
            .report
            .gcups_sim
            .unwrap();
        // Bulk-synchronous devices run one after another: no multi-GPU gain.
        assert!(fine > 2.0 * bulk, "fine {fine} vs bulk {bulk}");
    }

    #[test]
    fn small_matrices_pipeline_poorly() {
        // Pipeline fill/drain and narrow slabs (too few tile columns to
        // feed every SM) dominate short matrices: efficiency grows with
        // size — the paper's motivation for megabase inputs.
        let p = Platform::env2();
        let small = run_des(8_192, 8_192, &p, &cfg()).report.gcups_sim.unwrap();
        let large = run_des(4 * MBP, 4 * MBP, &p, &cfg())
            .report
            .gcups_sim
            .unwrap();
        assert!(large > 1.2 * small, "large {large} vs small {small}");
    }

    #[test]
    fn utilization_reported_per_device() {
        let p = Platform::env2();
        let run = run_des(MBP, MBP, &p, &cfg());
        assert_eq!(run.report.devices.len(), 3);
        for d in &run.report.devices {
            let u = d.sim_utilization.unwrap();
            assert!((0.0..=1.0).contains(&u), "utilization {u}");
        }
        // Proportional split keeps every device mostly busy.
        assert!(run
            .report
            .devices
            .iter()
            .all(|d| d.sim_utilization.unwrap() > 0.6));
    }

    #[test]
    fn shared_bridge_bottlenecks_fine_grain_many_gpu_runs() {
        use megasw_gpusim::LinkSpec;
        // Fine granularity + 8 GPUs: with independent links the pipeline
        // scales; with everything behind one slow bridge the transfers
        // serialize and throughput collapses toward the bridge's capacity.
        let fine = RunConfig {
            block_h: 8,
            ..cfg()
        };
        let free = Platform::homogeneous(catalog::gtx680(), 8);
        let bridged = free.clone().with_bridge(LinkSpec::slow_for_tests());
        let g_free = run_des(MBP, MBP, &free, &fine).report.gcups_sim.unwrap();
        let g_bridged = run_des(MBP, MBP, &bridged, &fine).report.gcups_sim.unwrap();
        assert!(
            g_free > 1.5 * g_bridged,
            "free {g_free} vs bridged {g_bridged}"
        );
        // At coarse granularity (the paper default) transfers are rare and
        // even the slow shared bridge costs almost nothing.
        let coarse = cfg();
        let g_coarse_free = run_des(MBP, MBP, &free, &coarse).report.gcups_sim.unwrap();
        let g_coarse_bridged = run_des(MBP, MBP, &bridged, &coarse)
            .report
            .gcups_sim
            .unwrap();
        assert!(
            g_coarse_bridged > 0.95 * g_coarse_free,
            "coarse: bridged {g_coarse_bridged} vs free {g_coarse_free}"
        );
    }

    #[test]
    fn stall_breakdown_accounts_for_all_idle_time() {
        let p = Platform::env2();
        let run = run_des(MBP, MBP, &p, &cfg());
        let makespan = run.report.sim_time.unwrap();
        for (d, bd) in run.report.devices.iter().zip(&run.stalls) {
            let idle = makespan.saturating_sub(d.sim_busy.unwrap());
            assert_eq!(bd.total(), idle, "device {}", d.device);
        }
    }

    #[test]
    fn equal_split_shows_up_as_drain_idle_on_the_fast_board() {
        // Titan finishes its (undersized) equal slab early and drains;
        // proportional splitting removes that idle.
        let p = Platform::env2();
        let equal = run_des(
            2 * MBP,
            2 * MBP,
            &p,
            &cfg().with_partition(PartitionPolicy::Equal),
        );
        let prop = run_des(2 * MBP, 2 * MBP, &p, &cfg());
        let titan_equal_drain = equal.stalls[0].drain.as_nanos();
        let titan_prop_drain = prop.stalls[0].drain.as_nanos();
        assert!(
            titan_equal_drain > 10 + titan_prop_drain * 4,
            "equal {titan_equal_drain}ns vs proportional {titan_prop_drain}ns"
        );
    }

    #[test]
    fn later_devices_pay_pipeline_startup() {
        let p = Platform::homogeneous(catalog::gtx680(), 4);
        let run = run_des(MBP, MBP, &p, &cfg());
        for pair in run.stalls.windows(2) {
            assert!(pair[1].startup >= pair[0].startup, "{:?}", run.stalls);
        }
        assert_eq!(run.stalls[0].startup, SimTime::ZERO);
        assert!(run.stalls[3].startup > SimTime::ZERO);
    }

    #[test]
    fn determinism() {
        let p = Platform::env2();
        let a = run_des(MBP, MBP, &p, &cfg()).report.sim_time;
        let b = run_des(MBP, MBP, &p, &cfg()).report.sim_time;
        assert_eq!(a, b);
    }

    #[test]
    fn empty_matrix() {
        let run = run_des(0, 100, &Platform::env1(), &cfg());
        assert_eq!(run.report.sim_time, Some(SimTime::ZERO));
    }

    #[test]
    fn des_sim_builder_matches_wrapper_and_records_spans() {
        use megasw_obs::ObsLevel;
        let p = Platform::env2();
        let obs = Recorder::new(ObsLevel::Full);
        let run = DesSim::new(200_000, 200_000, &p)
            .config(cfg())
            .observer(obs.clone())
            .run();
        let wrapper = run_des(200_000, 200_000, &p, &cfg());
        assert_eq!(run.report.sim_time, wrapper.report.sim_time);

        let spans = obs.spans();
        assert!(spans.iter().any(|s| s.kind == ObsKind::Kernel));
        assert!(spans.iter().any(|s| s.kind == ObsKind::BorderXfer));
        // All three devices appear, timestamps are simulated time.
        for d in 0..3u32 {
            assert!(spans.iter().any(|s| s.device == Some(d)), "device {d}");
        }
        let max_end = spans.iter().map(|s| s.end_ns).max().unwrap();
        assert_eq!(max_end, run.report.sim_time.unwrap().as_nanos());
        // DeviceReport carries the same stall breakdowns as DesRun.stalls.
        for (d, bd) in run.report.devices.iter().zip(&run.stalls) {
            assert_eq!(d.stall, Some(*bd));
        }
    }

    #[test]
    fn des_attribution_sums_to_sim_time_and_mirrors_stalls() {
        let p = Platform::env2();
        let run = run_des(MBP, MBP, &p, &cfg());
        let sim_ns = run.report.sim_time.unwrap().as_nanos();
        for (d, bd) in run.report.devices.iter().zip(&run.stalls) {
            let attr = d.attribution.expect("DES runs attribute phases");
            assert_eq!(attr.total_ns(), sim_ns, "device {}: {attr}", d.device);
            assert_eq!(attr.compute_ns, d.sim_busy.unwrap().as_nanos());
            assert_eq!(attr.wait_input_ns, bd.input_stalls.as_nanos());
            // The twin models no checkpoint/prune/rescue clocks; everything
            // else (startup + drain) lands in `other`.
            assert_eq!(attr.checkpoint_ns, 0);
            assert_eq!(attr.prune_skip_ns, 0);
            assert_eq!(attr.simd_rescue_ns, 0);
            assert_eq!(
                attr.other_ns,
                (bd.startup + bd.drain).as_nanos(),
                "device {}",
                d.device
            );
        }
        assert_eq!(run.report.simd_rescues, 0);
    }

    #[test]
    fn des_live_telemetry_uses_simulated_time() {
        let p = Platform::env2();
        let m = 200_000usize;
        let n = 200_000usize;
        let live = LiveTelemetry::with_manual_clock(p.len(), (m * n) as u64);
        let run = DesSim::new(m, n, &p)
            .config(cfg())
            .live(Arc::clone(&live))
            .run();
        let s = live.snapshot();
        // The manual clock ends exactly at the simulated makespan, so the
        // live cumulative GCUPS equals the report's simulated GCUPS.
        assert_eq!(s.now_ns, run.report.sim_time.unwrap().as_nanos());
        assert_eq!(s.cells_done() as u128, run.report.total_cells);
        assert!((s.fraction_done() - 1.0).abs() < 1e-12);
        let gcups = run.report.gcups_sim.unwrap();
        assert!(
            (s.gcups_cumulative() - gcups).abs() / gcups < 1e-6,
            "live {} vs report {gcups}",
            s.gcups_cumulative()
        );
        // Every device booked all of its rows.
        for d in &s.devices {
            assert!(d.rows_total > 0);
            assert_eq!(d.rows_done, d.rows_total);
            assert!(d.busy_ns > 0);
        }
    }

    #[test]
    fn bulk_builder_matches_wrapper() {
        let p = Platform::env1();
        let a = DesSim::new(500_000, 500_000, &p)
            .config(cfg())
            .bulk(true)
            .run();
        let b = run_des_bulk(500_000, 500_000, &p, &cfg());
        assert_eq!(a.report.sim_time, b.report.sim_time);
        assert!(a.report.devices.iter().all(|d| d.stall.is_some()));
    }

    #[test]
    fn des_fault_without_recovery_aborts_at_the_fault_instant() {
        use crate::pipeline::FaultPlan;
        let p = Platform::env2();
        let run = DesSim::new(MBP, MBP, &p)
            .config(cfg())
            .faults(FaultPlan {
                device: 1,
                fail_at_block_row: 100,
            })
            .run();
        assert_eq!(
            run.aborted,
            Some(PipelineError::DeviceFault {
                device: 1,
                block_row: 100
            })
        );
        assert_eq!(run.losses.len(), 1);
        assert_eq!(run.losses[0].device, 1);
        assert_eq!(run.losses[0].block_row, 100);
        // Aborted mid-matrix: strictly before the fault-free makespan.
        let clean = run_des(MBP, MBP, &p, &cfg()).report.sim_time.unwrap();
        assert!(run.report.sim_time.unwrap() < clean);
        assert!(run.report.recovery.is_none());
    }

    #[test]
    fn des_recovery_completes_with_accounting_and_slower_clock() {
        use crate::pipeline::FaultPlan;
        let p = Platform::env2();
        let clean = run_des(MBP, MBP, &p, &cfg());
        let run = DesSim::new(MBP, MBP, &p)
            .config(cfg())
            .faults(FaultPlan {
                device: 1,
                fail_at_block_row: 100,
            })
            .recover(RecoveryPolicy::default())
            .run();
        assert!(run.aborted.is_none());
        let rec = run.report.recovery.as_ref().unwrap();
        assert_eq!(rec.recoveries, 1);
        assert_eq!(rec.failed_devices, vec![1]);
        assert!(rec.checkpoints_taken > 0);
        assert!(rec.rewound_cells > 0);
        assert_eq!(rec.resumed_from_rows[0] % 8, 0);
        // Two survivors, original device indices.
        let devs: Vec<usize> = run.report.devices.iter().map(|d| d.device).collect();
        assert_eq!(devs, vec![0, 2]);
        // Losing a device and rewinding costs simulated time.
        assert!(run.report.sim_time.unwrap() > clean.report.sim_time.unwrap());
        assert!(run.report.gcups_sim.unwrap() < clean.report.gcups_sim.unwrap());
    }

    #[test]
    fn des_recovery_is_deterministic() {
        use crate::pipeline::FaultSchedule;
        let p = Platform::env2();
        let go = || {
            DesSim::new(MBP, MBP, &p)
                .config(cfg().with_checkpoint(crate::config::CheckpointCadence::EveryRows(16)))
                .faults("1:100,2:300:ring-push".parse::<FaultSchedule>().unwrap())
                .recover(RecoveryPolicy {
                    max_device_failures: 2,
                })
                .run()
        };
        let a = go();
        let b = go();
        assert_eq!(a.report.sim_time, b.report.sim_time);
        assert_eq!(a.report.recovery, b.report.recovery);
        assert_eq!(a.losses, b.losses);
        assert_eq!(a.report.recovery.as_ref().unwrap().recoveries, 2);
        assert_eq!(a.report.devices.len(), 1);
    }

    #[test]
    fn des_recovery_budget_exhaustion_aborts_with_partial_accounting() {
        use crate::pipeline::FaultSchedule;
        let p = Platform::env2();
        let run = DesSim::new(MBP, MBP, &p)
            .config(cfg())
            .faults("1:100,2:300".parse::<FaultSchedule>().unwrap())
            .recover(RecoveryPolicy {
                max_device_failures: 1,
            })
            .run();
        assert_eq!(
            run.aborted,
            Some(PipelineError::DeviceFault {
                device: 2,
                block_row: 300
            })
        );
        let rec = run.report.recovery.as_ref().unwrap();
        assert_eq!(rec.recoveries, 1);
        assert_eq!(run.losses.len(), 2);
        // Losses carry the cumulative clock: strictly increasing instants.
        assert!(run.losses[0].at < run.losses[1].at);
    }

    #[test]
    fn des_recovery_rejects_disabled_checkpoint_cadence() {
        use crate::config::CheckpointCadence;
        use crate::pipeline::FaultPlan;
        let p = Platform::env2();
        let run = DesSim::new(MBP, MBP, &p)
            .config(cfg().with_checkpoint(CheckpointCadence::Disabled))
            .faults(FaultPlan {
                device: 1,
                fail_at_block_row: 100,
            })
            .recover(RecoveryPolicy::default())
            .run();
        assert!(matches!(run.aborted, Some(PipelineError::InvalidConfig(_))));
    }

    #[test]
    fn des_pruning_mirror_speeds_up_high_identity_runs() {
        let p = Platform::env2();
        let clean = run_des(MBP, MBP, &p, &cfg());
        assert!(clean.report.pruning.is_none());
        let pruned = DesSim::new(MBP, MBP, &p)
            .config(cfg().with_pruning(PruneMode::Distributed))
            .identity(0.99)
            .run();
        let pr = pruned.report.pruning.as_ref().unwrap();
        assert_eq!(pr.mode, PruneMode::Distributed);
        assert!(pr.tiles_pruned > 0, "{pr:?}");
        assert!(pr.tiles_pruned < pr.tiles_total);
        assert!(
            pr.cells_skipped >= pruned.report.total_cells / 5,
            "expected ≥ 20% cells skipped, got {} of {}",
            pr.cells_skipped,
            pruned.report.total_cells
        );
        // Skipped tiles cost no kernel time: the simulated clock shrinks
        // and the effective GCUPS (over all m·n cells) rises.
        assert!(pruned.report.sim_time.unwrap() < clean.report.sim_time.unwrap());
        assert!(pruned.report.gcups_sim.unwrap() > clean.report.gcups_sim.unwrap());
    }

    #[test]
    fn des_pruned_fraction_grows_with_identity() {
        let p = Platform::env2();
        let frac = |q: f64| {
            DesSim::new(MBP, MBP, &p)
                .config(cfg().with_pruning(PruneMode::Distributed))
                .identity(q)
                .run()
                .report
                .pruning
                .unwrap()
                .pruned_fraction()
        };
        let (low, mid, high) = (frac(0.25), (frac(0.80)), frac(0.99));
        // Unrelated DNA has a non-growing diagonal score: nothing to prune.
        assert_eq!(low, 0.0);
        assert!(mid > 0.0);
        assert!(high >= mid, "high {high} vs mid {mid}");
    }

    #[test]
    fn des_distributed_watermark_prunes_at_least_as_much_as_local() {
        let p = Platform::env2();
        let go = |mode: PruneMode| {
            DesSim::new(MBP, MBP, &p)
                .config(cfg().with_pruning(mode))
                .identity(0.95)
                .run()
                .report
                .pruning
                .unwrap()
        };
        let local = go(PruneMode::Local);
        let dist = go(PruneMode::Distributed);
        assert!(
            dist.tiles_pruned >= local.tiles_pruned,
            "distributed {} vs local {}",
            dist.tiles_pruned,
            local.tiles_pruned
        );
        // The global side channel keeps laggard devices better informed.
        assert!(dist.watermark_lag <= local.watermark_lag);
    }

    #[test]
    fn des_pruning_composes_with_recovery() {
        use crate::pipeline::FaultPlan;
        let p = Platform::env2();
        let run = DesSim::new(MBP, MBP, &p)
            .config(cfg().with_pruning(PruneMode::Distributed))
            .identity(0.99)
            .faults(FaultPlan {
                device: 1,
                fail_at_block_row: 100,
            })
            .recover(RecoveryPolicy::default())
            .run();
        assert!(run.aborted.is_none());
        assert_eq!(run.report.recovery.as_ref().unwrap().recoveries, 1);
        assert!(run.report.pruning.as_ref().unwrap().tiles_pruned > 0);
    }

    #[test]
    fn sweep_is_monotone_for_homogeneous_platform() {
        let p = Platform::homogeneous(catalog::m2090(), 4);
        let sweep = gcups_versus_devices(2 * MBP, 2 * MBP, &p, &cfg());
        assert_eq!(sweep.len(), 4);
        for w in sweep.windows(2) {
            assert!(w[1].1 > w[0].1, "sweep not monotone: {sweep:?}");
        }
    }

    #[test]
    fn drift_slows_makespan_and_applies_only_after_its_row() {
        // Halving one of two homogeneous devices' clock (factor 0.5) from
        // row 0 nearly doubles the pipeline makespan; halving it only from
        // the midpoint lands in between.
        let p = Platform::env1();
        let rows = MBP.div_ceil(cfg().block_h);
        let sim = |after_row: usize| {
            DesSim::new(MBP, MBP, &p)
                .drift(ClockDrift {
                    device: 1,
                    after_row,
                    factor: 0.5,
                })
                .run()
                .report
                .sim_time
                .unwrap()
                .as_secs_f64()
        };
        let plain = DesSim::new(MBP, MBP, &p)
            .run()
            .report
            .sim_time
            .unwrap()
            .as_secs_f64();
        let half = sim(rows / 2);
        let full = sim(0);
        assert!(full > 1.6 * plain, "full-run drift {full} vs plain {plain}");
        assert!(
            half > 1.15 * plain && half < full,
            "mid-run drift {half} should sit between plain {plain} and full {full}"
        );
    }

    #[test]
    fn stacked_drifts_multiply() {
        let p = Platform::env1();
        let once = DesSim::new(MBP, MBP, &p)
            .drift(ClockDrift {
                device: 0,
                after_row: 0,
                factor: 0.5,
            })
            .run()
            .report
            .sim_time
            .unwrap();
        let twice = DesSim::new(MBP, MBP, &p)
            .drift(ClockDrift {
                device: 0,
                after_row: 0,
                factor: 0.5,
            })
            .drift(ClockDrift {
                device: 0,
                after_row: 0,
                factor: 0.5,
            })
            .run()
            .report
            .sim_time
            .unwrap();
        assert!(twice > once, "stacked drift {twice:?} vs single {once:?}");
    }

    #[test]
    fn des_rebalance_reports_and_stays_quiet_when_balanced() {
        // Homogeneous platform, no drift: the controller evaluates at every
        // boundary but never finds a split worth the hysteresis threshold,
        // and the segment barriers cost almost nothing.
        let p = Platform::env1();
        let seg = DesSim::new(MBP, MBP, &p)
            .config(cfg().with_rebalance(RebalanceMode::on()))
            .run();
        let rb = seg.report.rebalance.as_ref().expect("rebalance report");
        assert!(rb.evaluations > 0);
        assert_eq!(rb.migrations, 0, "balanced run migrated: {rb:?}");
        assert_eq!(rb.moved_columns, 0);
        assert!(rb.applied_at_rows.is_empty());
        let static_t = DesSim::new(MBP, MBP, &p)
            .run()
            .report
            .sim_time
            .unwrap()
            .as_secs_f64();
        let seg_t = seg.report.sim_time.unwrap().as_secs_f64();
        assert!(
            seg_t <= 1.10 * static_t,
            "segment barriers too costly: {seg_t} vs {static_t}"
        );
        // Off keeps the field absent.
        let off = DesSim::new(MBP, MBP, &p).run();
        assert!(off.report.rebalance.is_none());
    }

    #[test]
    fn rebalance_recoups_midrun_drift_on_env2() {
        // The acceptance scenario: env2's Titan (the biggest proportional
        // share) halves its clock mid-run. Static slabs ride the throttled
        // board to the end; the rebalance controller shifts columns to the
        // healthy boards at the next boundaries and recovers ≥ 15% of the
        // makespan.
        let p = Platform::env2();
        let rows = MBP.div_ceil(cfg().block_h);
        let drift = ClockDrift {
            device: 0,
            after_row: rows / 2,
            factor: 0.5,
        };
        let run = |rb: RebalanceMode| {
            DesSim::new(MBP, MBP, &p)
                .config(cfg().with_rebalance(rb))
                .drift(drift)
                .run()
        };
        let fixed = run(RebalanceMode::Off);
        let moved = run(RebalanceMode::on());
        assert!(fixed.report.rebalance.is_none());
        let st = fixed.report.sim_time.unwrap().as_secs_f64();
        let dy = moved.report.sim_time.unwrap().as_secs_f64();
        let improvement = 1.0 - dy / st;
        assert!(
            improvement >= 0.15,
            "rebalance recovered only {:.1}% (static {st}s, rebalanced {dy}s)",
            improvement * 100.0
        );
        let rb = moved.report.rebalance.as_ref().unwrap();
        assert!(rb.migrations >= 1, "no migration applied: {rb:?}");
        assert!(rb.moved_columns > 0);
        assert_eq!(rb.migrations as usize, rb.applied_at_rows.len());
        // Every applied row is a checkpoint-cadence boundary, so the
        // threaded twin could hand off from a full-width border wave there.
        let iv = cfg().policy.checkpoint.rows_interval().unwrap();
        for &row in &rb.applied_at_rows {
            assert_eq!(row % iv, 0, "migration off-boundary at {row}");
        }
    }
}
