//! Block pruning (CUDAlign 2.1).
//!
//! When only the best score/position is wanted (the paper's stage 1), a
//! tile can be skipped if **no path through it can reach the best score
//! found so far**: from any incoming border cell with value `v` at matrix
//! position `(bi, bj)`, the final score of any alignment continuing through
//! it is at most `v + match · min(m − bi, n − bj)` — every remaining step
//! can at best be a match. Using the tile's corner (the loosest position)
//! and the maximum incoming border value gives a safe tile-level bound.
//!
//! A pruned tile emits `H = 0`, `E = F = −∞` borders. This *underestimates*
//! downstream values (true `H ≥ 0` everywhere, and DP is monotone in its
//! inputs), which is safe because the bound proves no path through the tile
//! can even tie the current best (the test uses a **strict** comparison),
//! so the final best cell — including its deterministic tie-break — is
//! bit-identical to the unpruned run. That property is asserted in tests.
//!
//! This module provides both the sequential pruned executor ([`run_pruned`])
//! and the reusable pieces of the protocol — [`prune_bound`],
//! [`restore_corner`], and the fast-skip substitute output
//! ([`skip_block`](crate::block::skip_block)) — which `megasw-multigpu`
//! composes into *distributed* pruning: each device worker tests the same
//! bound against a shared best-score watermark propagated between
//! neighbours alongside the border rings.
//!
//! Pruning applies only to **local** (Smith-Waterman) semantics: the safety
//! argument leans on the zero floor (`H ≥ 0` everywhere), which anchored
//! kernels do not have.

use crate::block::{scalar_block, skip_block, BlockInput};
use crate::border::{ColBorder, RowBorder};
use crate::cell::{BestCell, Score};
use crate::grid::BlockGrid;
use crate::scoring::ScoreScheme;

/// Upper bound on the final score of any alignment path that enters a tile
/// through its corner region.
///
/// The tile spans DP rows `i0..` and columns `j0..` (1-based) of an `m × n`
/// matrix; `incoming_max` is the maximum `H` on its incoming top/left
/// borders. From any border cell, every remaining DP step can at best be a
/// match, and the tile's corner `(i0 − 1, j0 − 1)` is the loosest position
/// any path can enter through, so
/// `bound = max(incoming_max, 0) + match · min(m − i0 + 1, n − j0 + 1)`.
/// Widened to `i64` so the product can never overflow [`Score`].
#[inline]
pub fn prune_bound(
    incoming_max: Score,
    m: usize,
    n: usize,
    i0: usize,
    j0: usize,
    scheme: &ScoreScheme,
) -> i64 {
    let remaining = (m - (i0 - 1)).min(n - (j0 - 1));
    incoming_max.max(0) as i64 + scheme.match_score as i64 * remaining as i64
}

/// True when a tile with the given bound cannot even *tie* `watermark`.
///
/// The comparison is **strict**: a tile that could tie the watermark is
/// still computed, so the deterministic row-major tie-break of the unpruned
/// run is preserved bit-for-bit.
#[inline]
pub fn tile_is_prunable(bound: i64, watermark: Score) -> bool {
    bound < watermark as i64
}

/// Restore corner agreement between a top and a left border when one side
/// came from a pruned tile (its `H` is all zeros) while the exact corner
/// flows on the other side.
///
/// Both sides are ≤ the true value (pruned substitutes underestimate, and
/// true `H ≥ 0`), so `max` recovers the exact corner whenever it survives
/// on either path — and when both carriers were pruned, the pruning bound
/// already proved no best-scoring path crosses this corner.
#[inline]
pub fn restore_corner(top: &mut RowBorder, left: &mut ColBorder) {
    if top.h[0] != left.h[0] {
        let corner = top.h[0].max(left.h[0]);
        top.h[0] = corner;
        left.h[0] = corner;
    }
}

/// Result of a pruned grid execution.
#[derive(Debug, Clone)]
pub struct PrunedResult {
    pub best: BestCell,
    /// DP cells actually computed.
    pub cells_computed: u128,
    /// Tiles skipped by the pruning bound.
    pub tiles_pruned: usize,
    /// Total tiles in the grid.
    pub tiles_total: usize,
}

impl PrunedResult {
    /// Fraction of matrix cells that were never computed.
    pub fn pruned_fraction(&self, grid: &BlockGrid) -> f64 {
        let total = grid.cells();
        if total == 0 {
            0.0
        } else {
            1.0 - (self.cells_computed as f64 / total as f64)
        }
    }
}

/// Execute the grid in external-diagonal order with block pruning.
///
/// Diagonal order matters: the best score grows along the similarity band
/// before the off-band tiles are visited, which is what gives the bound its
/// bite on real (similar) sequence pairs.
pub fn run_pruned(a: &[u8], b: &[u8], grid: &BlockGrid, scheme: &ScoreScheme) -> PrunedResult {
    assert_eq!(a.len(), grid.m);
    assert_eq!(b.len(), grid.n);

    let rows = grid.rows();
    let cols = grid.cols();
    let mut best = BestCell::ZERO;
    let mut cells_computed: u128 = 0;
    let mut tiles_pruned = 0usize;

    // Borders currently waiting at each tile-column top and tile-row left.
    let mut tops: Vec<RowBorder> = (0..cols)
        .map(|c| RowBorder::zero(grid.col_width(c)))
        .collect();
    let mut lefts: Vec<ColBorder> = (0..rows)
        .map(|r| ColBorder::zero(grid.row_height(r)))
        .collect();

    for d in 0..grid.external_diagonals() {
        for (r, c) in grid.diagonal_tiles(d) {
            let (i0, i1) = grid.row_range(r);
            let (j0, j1) = grid.col_range(c);

            let incoming_max = tops[c].max_h().max(lefts[r].max_h());
            let upper = prune_bound(incoming_max, grid.m, grid.n, i0, j0, scheme);

            if tile_is_prunable(upper, best.score) {
                // No path through this tile can even tie the current best.
                tiles_pruned += 1;
                let out = skip_block(i1 - i0, j1 - j0);
                tops[c] = out.bottom;
                lefts[r] = out.right;
                continue;
            }

            // The pruned substitute borders zero the corner, so the corner
            // agreement between a pruned and an unpruned neighbour border
            // must be restored before computing.
            let mut top = std::mem::replace(&mut tops[c], RowBorder::zero(0));
            let mut left = std::mem::replace(&mut lefts[r], ColBorder::zero(0));
            restore_corner(&mut top, &mut left);

            let out = scalar_block(
                BlockInput {
                    a_rows: &a[i0 - 1..i1 - 1],
                    b_cols: &b[j0 - 1..j1 - 1],
                    top: &top,
                    left: &left,
                    row_offset: i0,
                    col_offset: j0,
                },
                scheme,
            );
            best = best.merge(out.best);
            cells_computed += out.cells as u128;
            tops[c] = out.bottom;
            lefts[r] = out.right;
        }
    }

    PrunedResult {
        best,
        cells_computed,
        tiles_pruned,
        tiles_total: grid.tiles(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gotoh::rolling_best;
    use megasw_seq::{ChromosomeGenerator, DivergenceModel, GenerateConfig};

    #[test]
    fn pruned_run_matches_unpruned_on_similar_pair() {
        let scheme = ScoreScheme::cudalign();
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(4_000, 21)).generate();
        let (b, _) = DivergenceModel::snp_only(22, 0.01).apply(&a);
        let grid = BlockGrid::new(a.len(), b.len(), 128, 128);
        let pruned = run_pruned(a.codes(), b.codes(), &grid, &scheme);
        let want = rolling_best(a.codes(), b.codes(), &scheme);
        assert_eq!(pruned.best, want);
        assert!(
            pruned.tiles_pruned > 0,
            "expected pruning on a 99%-identical pair (pruned {}/{})",
            pruned.tiles_pruned,
            pruned.tiles_total
        );
        assert!(pruned.cells_computed < grid.cells());
    }

    #[test]
    fn pruned_run_matches_unpruned_on_dissimilar_pair() {
        let scheme = ScoreScheme::cudalign();
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(1_500, 31)).generate();
        let b = ChromosomeGenerator::new(GenerateConfig::uniform(1_500, 32)).generate();
        let grid = BlockGrid::new(a.len(), b.len(), 64, 64);
        let pruned = run_pruned(a.codes(), b.codes(), &grid, &scheme);
        let want = rolling_best(a.codes(), b.codes(), &scheme);
        assert_eq!(pruned.best, want);
    }

    #[test]
    fn pruning_preserves_tiebreaks_on_repetitive_input() {
        let scheme = ScoreScheme::cudalign();
        let unit = megasw_seq::DnaSeq::from_str_unwrap("ACGT");
        let mut a = megasw_seq::DnaSeq::new();
        for _ in 0..300 {
            a.extend_codes(unit.codes());
        }
        let b = a.clone();
        let grid = BlockGrid::new(a.len(), b.len(), 100, 100);
        let pruned = run_pruned(a.codes(), b.codes(), &grid, &scheme);
        assert_eq!(pruned.best, rolling_best(a.codes(), b.codes(), &scheme));
    }

    #[test]
    fn identical_sequences_prune_most_off_band_tiles() {
        let scheme = ScoreScheme::cudalign();
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(6_000, 41)).generate();
        let grid = BlockGrid::new(a.len(), a.len(), 128, 128);
        let pruned = run_pruned(a.codes(), a.codes(), &grid, &scheme);
        assert_eq!(pruned.best.score, a.len() as i32);
        let frac = pruned.pruned_fraction(&grid);
        assert!(frac > 0.3, "pruned fraction = {frac}");
    }

    #[test]
    fn small_matrices_never_misprune() {
        let scheme = ScoreScheme::cudalign();
        for seed in 0..6 {
            let a = ChromosomeGenerator::new(GenerateConfig::uniform(200, seed)).generate();
            let (b, _) = DivergenceModel::test_scale(seed + 7).apply(&a);
            for bs in [16, 33, 64] {
                let grid = BlockGrid::new(a.len(), b.len(), bs, bs);
                let pruned = run_pruned(a.codes(), b.codes(), &grid, &scheme);
                assert_eq!(
                    pruned.best,
                    rolling_best(a.codes(), b.codes(), &scheme),
                    "seed {seed} block {bs}"
                );
            }
        }
    }

    #[test]
    fn empty_input() {
        let scheme = ScoreScheme::cudalign();
        let grid = BlockGrid::new(0, 0, 16, 16);
        let pruned = run_pruned(&[], &[], &grid, &scheme);
        assert_eq!(pruned.best, BestCell::ZERO);
        assert_eq!(pruned.tiles_total, 0);
    }
}
