//! Randomized property tests for the sequence substrate.
//!
//! Deterministic seeded sweeps: each property runs over a fixed number of
//! ChaCha8-generated cases, so failures reproduce exactly from the case
//! index printed in the assertion message.

use megasw_seq::fasta::{read_fasta, write_fasta, FastaRecord};
use megasw_seq::rng::ChaCha8Rng;
use megasw_seq::stats::seq_stats;
use megasw_seq::{
    ChromosomeGenerator, DivergenceModel, DnaSeq, GenerateConfig, Nucleotide, PackedDna,
};

const CASES: u64 = 48;

/// Arbitrary DNA sequence as raw codes (0..=4), length in `0..max_len`.
fn dna_codes(rng: &mut ChaCha8Rng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len.max(1));
    (0..len).map(|_| rng.gen_range(0..=4u8)).collect()
}

#[test]
fn packing_roundtrips() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5E10 + case);
        let seq = DnaSeq::from_codes(dna_codes(&mut rng, 2_000)).unwrap();
        let packed = PackedDna::pack(&seq);
        assert_eq!(packed.unpack(), seq, "case {case}");
    }
}

#[test]
fn packed_random_access_matches() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5E20 + case);
        let seq = DnaSeq::from_codes(dna_codes(&mut rng, 500)).unwrap();
        let packed = PackedDna::pack(&seq);
        for i in 0..seq.len() {
            assert_eq!(packed.get(i), seq.get(i), "case {case}, index {i}");
        }
        assert_eq!(packed.get(seq.len()), None, "case {case}");
    }
}

#[test]
fn packed_is_at_most_a_quarter_plus_runs() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5E30 + case);
        let seq = DnaSeq::from_codes(dna_codes(&mut rng, 4_000)).unwrap();
        let packed = PackedDna::pack(&seq);
        // 2 bits/base plus run metadata; the word payload is the floor.
        assert!(
            packed.packed_bytes() >= seq.len().div_ceil(4),
            "case {case}"
        );
    }
}

#[test]
fn reverse_complement_involution() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5E40 + case);
        let seq = DnaSeq::from_codes(dna_codes(&mut rng, 1_000)).unwrap();
        assert_eq!(
            seq.reverse_complement().reverse_complement(),
            seq,
            "case {case}"
        );
        assert_eq!(seq.reversed().reversed(), seq, "case {case}");
        assert_eq!(seq.reverse_complement().len(), seq.len(), "case {case}");
    }
}

#[test]
fn reverse_complement_preserves_gc() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5E50 + case);
        let seq = DnaSeq::from_codes(dna_codes(&mut rng, 1_000)).unwrap();
        let rc = seq.reverse_complement();
        // A<->T and C<->G swaps leave the GC count invariant.
        assert!(
            (seq.gc_fraction() - rc.gc_fraction()).abs() < 1e-12,
            "case {case}"
        );
        assert_eq!(seq.n_count(), rc.n_count(), "case {case}");
    }
}

#[test]
fn ascii_roundtrip() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5E60 + case);
        let seq = DnaSeq::from_codes(dna_codes(&mut rng, 1_000)).unwrap();
        let text = seq.to_ascii_string();
        let back = DnaSeq::from_ascii(text.as_bytes()).unwrap();
        assert_eq!(back, seq, "case {case}");
    }
}

#[test]
fn fasta_roundtrip_arbitrary_records() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5E70 + case);
        let n_records = rng.gen_range(1..5usize);
        let width = rng.gen_range(1..100usize);
        let records: Vec<FastaRecord> = (0..n_records)
            .map(|i| FastaRecord {
                header: format!("rec{i} synthetic"),
                seq: DnaSeq::from_codes(dna_codes(&mut rng, 300)).unwrap(),
            })
            .collect();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, width).unwrap();
        let back = read_fasta(&buf[..]).unwrap();
        assert_eq!(back, records, "case {case}, width {width}");
    }
}

#[test]
fn generator_is_deterministic_and_sized() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5E80 + case);
        let len = rng.gen_range(0..30_000usize);
        let seed = rng.gen::<u64>();
        let cfg = GenerateConfig::sized(len, seed);
        let s1 = ChromosomeGenerator::new(cfg.clone()).generate();
        let s2 = ChromosomeGenerator::new(cfg).generate();
        assert_eq!(s1, s2, "case {case}");
        assert_eq!(s1.len(), len, "case {case}");
    }
}

#[test]
fn snp_divergence_preserves_length_and_counts() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5E90 + case);
        let len = rng.gen_range(1..20_000usize);
        let seed = rng.gen::<u64>();
        let rate = rng.gen::<f64>() * 0.3;
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(len, seed)).generate();
        let (b, summary) = DivergenceModel::snp_only(seed ^ 1, rate).apply(&a);
        assert_eq!(a.len(), b.len(), "case {case}");
        let diff = a
            .codes()
            .iter()
            .zip(b.codes())
            .filter(|(x, y)| x != y)
            .count();
        assert_eq!(diff, summary.substitutions, "case {case}");
    }
}

#[test]
fn divergence_channel_emits_valid_codes() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5EA0 + case);
        let len = rng.gen_range(0..10_000usize);
        let seed = rng.gen::<u64>();
        let a = ChromosomeGenerator::new(GenerateConfig::sized(len, seed)).generate();
        let (b, _) = DivergenceModel::human_chimp_scaled(seed ^ 2, len).apply(&a);
        assert!(b.codes().iter().all(|&c| c <= 4), "case {case}");
    }
}

#[test]
fn stats_counts_sum_to_length() {
    for case in 0..CASES {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5EB0 + case);
        let seq = DnaSeq::from_codes(dna_codes(&mut rng, 3_000)).unwrap();
        let st = seq_stats(&seq);
        assert_eq!(st.counts.iter().sum::<usize>(), seq.len(), "case {case}");
        assert!(st.longest_homopolymer <= seq.len(), "case {case}");
        assert!((0.0..=1.0).contains(&st.gc_fraction), "case {case}");
    }
}

#[test]
fn nucleotide_code_ascii_bijection() {
    for code in 0u8..=4 {
        let n = Nucleotide::from_code(code).unwrap();
        assert_eq!(Nucleotide::from_ascii(n.to_ascii()), Some(n));
        assert_eq!(n.code(), code);
    }
}
