//! Regenerate every table and figure of the PPoPP'14 evaluation
//! (experiment index in DESIGN.md §5; paper-vs-measured in EXPERIMENTS.md).
//!
//! ```text
//! cargo run -p megasw-bench --release --bin paper-tables [exp…]
//! ```
//!
//! With no arguments, every experiment is produced: `t1 t2 t3 f1 f2 f3 f4
//! f5 k1 verify`. GCUPS series come from the discrete-event backend at
//! paper-scale matrix dimensions; `k1` and `verify` run the real kernels on
//! this host.

use megasw::multigpu::baseline::{cpu_parallel, cpu_serial};
use megasw::multigpu::desrun::{run_des, run_des_bulk};
use megasw::prelude::*;
use megasw_bench::{gcups, render_csv, render_table};
use std::time::Instant;

fn main() {
    let mut wanted: Vec<String> = std::env::args().skip(1).collect();
    if wanted.is_empty() {
        wanted = [
            "t1", "t2", "t3", "f1", "f2", "f3", "f4", "f5", "f6", "k1", "verify",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    println!("megasw paper-tables — reproducing the PPoPP'14 evaluation shape");
    println!("(simulated 2012-era hardware; see DESIGN.md §2 for the substitution)");

    for exp in &wanted {
        match exp.as_str() {
            "t1" => table1(),
            "t2" => table2(),
            "t3" => table3(),
            "f1" => figure_scaling(),
            "f2" => figure_size_sweep(),
            "f3" => figure_buffer(),
            "f4" => figure_balance(),
            "f5" => figure_overlap(),
            "f6" => figure_bridge(),
            "k1" => kernel_table(),
            "verify" => verify(),
            other => eprintln!("unknown experiment {other:?} (skipped)"),
        }
    }
}

/// T1 — the benchmark sequence pairs (paper Table 1 analogue).
fn table1() {
    let header = [
        "pair",
        "human bp",
        "chimp bp",
        "cells",
        "GC %",
        "SNP %",
        "len ratio",
    ];
    let mut rows = Vec::new();
    for spec in &PairCatalog::default_scale().specs {
        let pair = ChromosomePair::generate(spec.clone());
        rows.push(vec![
            spec.name.to_string(),
            pair.human.len().to_string(),
            pair.chimp.len().to_string(),
            format!("{:.2e}", pair.cells() as f64),
            format!("{:.1}", pair.human.gc_fraction() * 100.0),
            format!(
                "{:.2}",
                pair.divergence.snp_fraction(pair.human.len()) * 100.0
            ),
            format!("{:.3}", pair.chimp.len() as f64 / pair.human.len() as f64),
        ]);
    }
    // The paper-scale dimensions the GCUPS tables use (not generated here;
    // the simulator only needs the matrix dimensions).
    for spec in &PairCatalog::paper_scale().specs {
        rows.push(vec![
            spec.name.to_string(),
            spec.human_len.to_string(),
            spec.chimp_len.to_string(),
            format!("{:.2e}", spec.cells() as f64),
            "-".into(),
            "-".into(),
            format!("{:.3}", spec.chimp_len as f64 / spec.human_len as f64),
        ]);
    }
    let t = render_table("T1: benchmark chromosome pairs", &header, &rows);
    print!("{t}");
    print!("{}", render_csv("t1", &header, &rows));
}

/// GCUPS rows for one platform across 1..=G devices, at paper-scale dims.
fn gcups_rows(platform: &Platform) -> Vec<Vec<String>> {
    let cfg = RunConfig::paper_default();
    let mut rows = Vec::new();
    for spec in &PairCatalog::paper_scale().specs {
        let mut row = vec![
            spec.name.to_string(),
            format!("{:.2e}", spec.cells() as f64),
        ];
        for g in 1..=platform.len() {
            let sub = platform.take(g);
            let rep = run_des(spec.human_len, spec.chimp_len, &sub, &cfg).report;
            row.push(format!("{:.2}", rep.gcups_sim.unwrap()));
        }
        rows.push(row);
    }
    rows
}

/// T2 — Environment 1 (2× GTX 680): GCUPS per pair, 1 vs 2 GPUs.
fn table2() {
    let p = Platform::env1();
    let header = ["pair", "cells", "1 GPU", "2 GPUs"];
    let rows = gcups_rows(&p);
    let t = render_table(
        &format!("T2: GCUPS on {} (simulated)", p.name),
        &header,
        &rows,
    );
    print!("{t}");
    print!("{}", render_csv("t2", &header, &rows));
}

/// T3 — Environment 2 (heterogeneous trio): GCUPS per pair, 1/2/3 GPUs.
fn table3() {
    let p = Platform::env2();
    let header = ["pair", "cells", "1 GPU", "2 GPUs", "3 GPUs"];
    let rows = gcups_rows(&p);
    let t = render_table(
        &format!("T3: GCUPS on {} (simulated)", p.name),
        &header,
        &rows,
    );
    print!("{t}");
    print!("{}", render_csv("t3", &header, &rows));
    let best: f64 = rows
        .iter()
        .filter_map(|r| r.last().and_then(|s| s.parse::<f64>().ok()))
        .fold(f64::MIN, f64::max);
    println!("peak: {best:.2} GCUPS with 3 heterogeneous GPUs (paper: 140.36)");
}

/// F1 — scaling: GCUPS and efficiency vs device count (homogeneous ladder),
/// for a chromosome-scale pair (near-perfect pipelining — the paper's
/// point) and a deliberately small pair (fill/drain and narrow slabs bite).
fn figure_scaling() {
    let cfg = RunConfig::paper_default();
    let big = &PairCatalog::paper_scale().specs[3]; // the largest pair
    let small = (250_000usize, 250_000usize);
    let p = Platform::homogeneous(catalog::gtx680(), 8);
    let header = [
        "GPUs",
        "chr19 GCUPS",
        "chr19 eff %",
        "250k GCUPS",
        "250k eff %",
    ];
    let mut rows = Vec::new();
    let (mut single_big, mut single_small) = (0.0, 0.0);
    for g in 1..=8 {
        let gb = run_des(big.human_len, big.chimp_len, &p.take(g), &cfg)
            .report
            .gcups_sim
            .unwrap();
        let gs = run_des(small.0, small.1, &p.take(g), &cfg)
            .report
            .gcups_sim
            .unwrap();
        if g == 1 {
            single_big = gb;
            single_small = gs;
        }
        rows.push(vec![
            g.to_string(),
            format!("{gb:.2}"),
            format!("{:.2}", 100.0 * gb / (single_big * g as f64)),
            format!("{gs:.2}"),
            format!("{:.2}", 100.0 * gs / (single_small * g as f64)),
        ]);
    }
    let t = render_table(
        &format!(
            "F1: scaling on 1..8× GTX 680 — pair {} vs 250 KBP pair",
            big.name
        ),
        &header,
        &rows,
    );
    print!("{t}");
    print!("{}", render_csv("f1", &header, &rows));
}

/// F2 — GCUPS vs matrix size (pipeline fill and slab width effects).
fn figure_size_sweep() {
    let cfg = RunConfig::paper_default();
    let p = Platform::env2();
    let header = ["side bp", "GCUPS", "% of plateau"];
    let sizes = [
        62_500usize,
        125_000,
        250_000,
        500_000,
        1_000_000,
        2_000_000,
        4_000_000,
        8_000_000,
        16_000_000,
    ];
    let series: Vec<f64> = sizes
        .iter()
        .map(|&s| run_des(s, s, &p, &cfg).report.gcups_sim.unwrap())
        .collect();
    let plateau = series.iter().copied().fold(f64::MIN, f64::max);
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .zip(&series)
        .map(|(&s, &g)| {
            vec![
                s.to_string(),
                format!("{g:.2}"),
                format!("{:.1}", 100.0 * g / plateau),
            ]
        })
        .collect();
    let t = render_table(
        &format!("F2: GCUPS vs sequence size on {}", p.name),
        &header,
        &rows,
    );
    print!("{t}");
    print!("{}", render_csv("f2", &header, &rows));
}

/// F3 — circular-buffer capacity sensitivity.
///
/// Communication hiding is a *granularity* story: at the paper-default
/// coarse granularity (512-row borders) one border transfer is tiny next
/// to a row's compute time, so even capacity 1 hides it; at fine
/// granularity (8-row borders, ≈ the per-block streaming the paper
/// describes) the transfer latency is a visible fraction of a row and the
/// ring needs ≥ 2 slots to pre-stage borders.
fn figure_buffer() {
    let header = [
        "capacity",
        "fine (8-row) GCUPS",
        "fine eff %",
        "coarse (512-row) GCUPS",
    ];
    let p = Platform::env1();
    let peak = p.aggregate_peak_gcups();
    let mut rows = Vec::new();
    for cap in [1usize, 2, 3, 4, 6, 8, 16, 32, 128] {
        let fine_cfg = RunConfig {
            block_h: 8,
            ..RunConfig::paper_default()
        }
        .with_buffer_capacity(cap);
        let coarse_cfg = RunConfig::paper_default().with_buffer_capacity(cap);
        let fine = run_des(1_000_000, 1_000_000, &p, &fine_cfg)
            .report
            .gcups_sim
            .unwrap();
        let coarse = run_des(1_000_000, 1_000_000, &p, &coarse_cfg)
            .report
            .gcups_sim
            .unwrap();
        rows.push(vec![
            cap.to_string(),
            format!("{fine:.2}"),
            format!("{:.1}", 100.0 * fine / peak),
            format!("{coarse:.2}"),
        ]);
    }
    let t = render_table(
        &format!(
            "F3: GCUPS vs circular-buffer capacity on {} (1 MBP²)",
            p.name
        ),
        &header,
        &rows,
    );
    print!("{t}");
    print!("{}", render_csv("f3", &header, &rows));
}

/// F4 — heterogeneous load balance: equal vs proportional split.
fn figure_balance() {
    let cfg = RunConfig::paper_default();
    let p = Platform::env2();
    let (m, n) = (4_000_000, 4_000_000);
    let header = [
        "policy",
        "GCUPS",
        "titan util %",
        "k20 util %",
        "580 util %",
        "titan drain ms",
    ];
    let mut rows = Vec::new();
    for (name, policy) in [
        ("equal", PartitionPolicy::Equal),
        ("proportional", PartitionPolicy::Proportional),
    ] {
        let run = run_des(m, n, &p, &cfg.clone().with_partition(policy));
        let rep = &run.report;
        let mut row = vec![name.to_string(), format!("{:.2}", rep.gcups_sim.unwrap())];
        for d in &rep.devices {
            row.push(format!("{:.1}", d.sim_utilization.unwrap() * 100.0));
        }
        // Where the fast board's idle goes: drain = it finished early.
        row.push(format!("{:.1}", run.stalls[0].drain.as_secs_f64() * 1e3));
        rows.push(row);
    }
    let t = render_table(
        &format!("F4: partitioning policy on {} (4 MBP²)", p.name),
        &header,
        &rows,
    );
    print!("{t}");
    print!("{}", render_csv("f4", &header, &rows));
}

/// F5 — overlap ablation: fine-grain pipeline vs bulk-synchronous exchange.
fn figure_overlap() {
    let cfg = RunConfig::paper_default();
    let (m, n) = (2_000_000, 2_000_000);
    let header = ["platform", "fine-grain", "bulk-sync", "ratio"];
    let mut rows = Vec::new();
    for p in [Platform::env1(), Platform::env2()] {
        let fine = run_des(m, n, &p, &cfg).report.gcups_sim.unwrap();
        let bulk = run_des_bulk(m, n, &p, &cfg).report.gcups_sim.unwrap();
        rows.push(vec![
            p.name.clone(),
            format!("{fine:.2}"),
            format!("{bulk:.2}"),
            format!("{:.2}×", fine / bulk),
        ]);
    }
    let t = render_table(
        "F5: fine-grain overlap vs bulk-synchronous (2 MBP²)",
        &header,
        &rows,
    );
    print!("{t}");
    print!("{}", render_csv("f5", &header, &rows));
}

/// F6 — interconnect topology (extension): independent per-pair links vs
/// one shared host bridge, across communication granularities.
fn figure_bridge() {
    use megasw::gpusim::LinkSpec;
    let free = Platform::homogeneous(catalog::gtx680(), 8);
    let bridged = free.clone().with_bridge(LinkSpec::pcie2_x16());
    let slow = free.clone().with_bridge(LinkSpec::slow_for_tests());
    let header = ["block_h", "indep links", "shared pcie2", "shared 0.5GB/s"];
    let mut rows = Vec::new();
    for block_h in [8usize, 32, 128, 512] {
        let cfg = RunConfig {
            block_h,
            ..RunConfig::paper_default()
        };
        let g = |p: &Platform| {
            run_des(1_000_000, 1_000_000, p, &cfg)
                .report
                .gcups_sim
                .unwrap()
        };
        rows.push(vec![
            block_h.to_string(),
            format!("{:.2}", g(&free)),
            format!("{:.2}", g(&bridged)),
            format!("{:.2}", g(&slow)),
        ]);
    }
    let t = render_table(
        "F6 (extension): 8× GTX 680 — link topology vs granularity (1 MBP²)",
        &header,
        &rows,
    );
    print!("{t}");
    print!("{}", render_csv("f6", &header, &rows));
}

/// K1 — real kernel rates on this host (the setup-section table).
fn kernel_table() {
    use megasw::sw::antidiag::antidiag_best;
    use megasw::sw::grid::{run_sequential, BlockGrid};
    use megasw::sw::prune::run_pruned;

    let len = 4_000usize;
    let a = ChromosomeGenerator::new(GenerateConfig::sized(len, 11)).generate();
    let (b, _) = DivergenceModel::test_scale(12).apply(&a);
    let scheme = ScoreScheme::cudalign();
    let cells = (a.len() as u128) * (b.len() as u128);

    let header = ["kernel", "time ms", "GCUPS", "notes"];
    let mut rows = Vec::new();
    let mut push = |name: &str, secs: f64, note: String| {
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", secs * 1e3),
            format!("{:.3}", gcups(cells, secs)),
            note,
        ]);
    };

    let t0 = Instant::now();
    let (serial_best, _) = cpu_serial(a.codes(), b.codes(), &scheme);
    push("gotoh (serial)", t0.elapsed().as_secs_f64(), String::new());

    let t0 = Instant::now();
    let _ = antidiag_best(a.codes(), b.codes(), &scheme);
    push(
        "anti-diagonal (serial)",
        t0.elapsed().as_secs_f64(),
        String::new(),
    );

    let grid = BlockGrid::new(a.len(), b.len(), 512, 512);
    let t0 = Instant::now();
    let _ = run_sequential(a.codes(), b.codes(), &grid, &scheme);
    push(
        "blocked grid 512²",
        t0.elapsed().as_secs_f64(),
        String::new(),
    );

    let t0 = Instant::now();
    let pr = run_pruned(a.codes(), b.codes(), &grid, &scheme);
    push(
        "blocked + pruning",
        t0.elapsed().as_secs_f64(),
        format!("{:.0}% cells pruned", pr.pruned_fraction(&grid) * 100.0),
    );

    for threads in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let (best, _) = cpu_parallel(a.codes(), b.codes(), &scheme, 512, threads);
        assert_eq!(best, serial_best);
        push(
            &format!("CPU wavefront ×{threads}"),
            t0.elapsed().as_secs_f64(),
            String::new(),
        );
    }

    let t = render_table(
        &format!("K1: kernel rates on this host ({len} bp pair)"),
        &header,
        &rows,
    );
    print!("{t}");
    print!("{}", render_csv("k1", &header, &rows));
}

/// Correctness spot-check: the threaded pipeline equals the reference on
/// every test-scale catalog pair and both environments.
fn verify() {
    println!("\n== verify: threaded pipeline vs sequential reference ==");
    let cfg = RunConfig::paper_default();
    for spec in &PairCatalog::test_scale().specs {
        let pair = ChromosomePair::generate(spec.clone());
        let want = kernel::scalar().best(pair.human.codes(), pair.chimp.codes(), &cfg.scheme);
        for p in [Platform::env1(), Platform::env2()] {
            let rep = PipelineRun::new(pair.human.codes(), pair.chimp.codes(), &p)
                .config(cfg.clone())
                .run()
                .expect("pipeline run failed");
            assert_eq!(rep.best, want, "{} on {}", spec.name, p.name);
        }
        println!(
            "  {}: score {} at ({}, {}) — identical on both environments ✓",
            spec.name, want.score, want.i, want.j
        );
    }
}
