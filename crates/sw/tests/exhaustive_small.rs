//! Exhaustive verification on small inputs: every pair of sequences over
//! {A, C, G} up to length 4 (121 sequences → 14 641 pairs), across every
//! kernel. Property tests sample the input space; this suite *covers* the
//! corner of it where off-by-one and boundary bugs live — empty sequences,
//! single bases, all the tiny tie-break configurations.

use megasw_sw::antidiag::antidiag_best;
use megasw_sw::banded::BandedResult;
use megasw_sw::cell::BestCell;
use megasw_sw::grid::{run_sequential, BlockGrid};
use megasw_sw::kernel::scalar;
use megasw_sw::prune::run_pruned;
use megasw_sw::reference::reference_best;
use megasw_sw::scoring::ScoreScheme;
use megasw_sw::traceback::{local_align, score_of_ops};

// The old free functions are deprecated shims; these helpers exercise the
// same entry points through the kernel trait they now delegate to.
fn gotoh_best(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> BestCell {
    scalar().best(a, b, scheme)
}

fn banded_best(a: &[u8], b: &[u8], scheme: &ScoreScheme, width: usize) -> BandedResult {
    scalar().banded(a, b, scheme, width)
}

/// All sequences over {A, C, G} of length 0..=max_len, as code vectors.
fn enumerate(max_len: usize) -> Vec<Vec<u8>> {
    let mut out = vec![Vec::new()];
    let mut frontier = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for seq in &frontier {
            for base in 0u8..3 {
                let mut s = seq.clone();
                s.push(base);
                next.push(s);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

#[test]
fn every_small_pair_agrees_across_scan_kernels() {
    let scheme = ScoreScheme::cudalign();
    let seqs = enumerate(4);
    assert_eq!(seqs.len(), 121);
    for a in &seqs {
        for b in &seqs {
            let want = reference_best(a, b, &scheme);
            assert_eq!(gotoh_best(a, b, &scheme), want, "gotoh {a:?} vs {b:?}");
            assert_eq!(
                antidiag_best(a, b, &scheme),
                want,
                "antidiag {a:?} vs {b:?}"
            );
        }
    }
}

#[test]
fn every_small_pair_agrees_across_blocked_kernels() {
    let scheme = ScoreScheme::lenient();
    let seqs = enumerate(3); // 40 sequences → 1 600 pairs × 3 geometries
    for a in &seqs {
        for b in &seqs {
            let want = reference_best(a, b, &scheme);
            for bs in [1usize, 2, 5] {
                let grid = BlockGrid::new(a.len(), b.len(), bs, bs);
                assert_eq!(
                    run_sequential(a, b, &grid, &scheme).best,
                    want,
                    "grid {bs} {a:?} vs {b:?}"
                );
                assert_eq!(
                    run_pruned(a, b, &grid, &scheme).best,
                    want,
                    "pruned {bs} {a:?} vs {b:?}"
                );
            }
            assert_eq!(
                banded_best(a, b, &scheme, a.len() + b.len() + 1).best,
                want,
                "banded {a:?} vs {b:?}"
            );
        }
    }
}

#[test]
fn every_small_alignment_rescores_exactly() {
    let scheme = ScoreScheme::cudalign();
    let seqs = enumerate(3);
    for a in &seqs {
        for b in &seqs {
            let want = reference_best(a, b, &scheme);
            let aln = local_align(a, b, &scheme);
            assert_eq!(aln.score, want.score, "{a:?} vs {b:?}");
            if aln.score > 0 {
                assert_eq!((aln.end_i, aln.end_j), (want.i, want.j), "{a:?} vs {b:?}");
                let a_seg = &a[aln.start_i - 1..aln.end_i];
                let b_seg = &b[aln.start_j - 1..aln.end_j];
                assert_eq!(
                    score_of_ops(a_seg, b_seg, &aln.ops, &scheme),
                    Ok(aln.score),
                    "{a:?} vs {b:?}"
                );
            } else {
                assert!(aln.is_empty());
            }
        }
    }
}

#[test]
fn small_pairs_with_n_bases_agree() {
    // {A, N} alphabet up to length 4: exercises the never-match rule at
    // every boundary position.
    let scheme = ScoreScheme::cudalign();
    let mut seqs = vec![Vec::new()];
    for len in 1..=4usize {
        for mask in 0..(1u32 << len) {
            let s: Vec<u8> = (0..len)
                .map(|i| if mask & (1 << i) != 0 { 4u8 } else { 0u8 })
                .collect();
            seqs.push(s);
        }
    }
    for a in &seqs {
        for b in &seqs {
            let want = reference_best(a, b, &scheme);
            assert_eq!(gotoh_best(a, b, &scheme), want, "{a:?} vs {b:?}");
            assert_eq!(antidiag_best(a, b, &scheme), want, "{a:?} vs {b:?}");
            // N never matches: score equals the best run of shared A's.
            assert!(want.score as usize <= a.len().min(b.len()));
        }
    }
}
