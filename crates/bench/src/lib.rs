//! Shared infrastructure for the benchmark harness.
//!
//! The experiment index (DESIGN.md §5) maps every table and figure of the
//! paper onto two artifacts:
//!
//! * the **`paper-tables` binary** (`cargo run -p megasw-bench --release
//!   --bin paper-tables`) regenerates every table/figure *series* — mostly
//!   on the discrete-event backend, so paper-scale matrix dimensions are
//!   cheap;
//! * the **criterion benches** (`cargo bench`) measure the real, threaded
//!   implementation on this host, one bench target per table/figure.
//!
//! This crate-level library holds what both share: cached workload pairs
//! and table-formatting helpers.

use megasw::prelude::*;
use std::sync::OnceLock;

/// A lazily generated, process-cached homologous pair for benches.
///
/// Criterion calls the bench closure many times; generation must happen
/// once. Distinct `(len, seed)` combinations used by the benches are
/// enumerated here.
pub fn cached_pair(len: usize, seed: u64) -> &'static (DnaSeq, DnaSeq) {
    static CACHE: OnceLock<parking_lot_free::Registry> = OnceLock::new();
    CACHE
        .get_or_init(parking_lot_free::Registry::default)
        .get(len, seed)
}

/// Tiny interior-mutability registry without extra deps (std mutex; the
/// lock is only held during generation or lookup).
mod parking_lot_free {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    #[derive(Default)]
    pub struct Registry {
        map: Mutex<HashMap<(usize, u64), &'static (DnaSeq, DnaSeq)>>,
    }

    impl Registry {
        pub fn get(&self, len: usize, seed: u64) -> &'static (DnaSeq, DnaSeq) {
            let mut map = self.map.lock().expect("registry lock");
            map.entry((len, seed)).or_insert_with(|| {
                let a = ChromosomeGenerator::new(GenerateConfig::sized(len, seed)).generate();
                let (b, _) = DivergenceModel::test_scale(seed + 7).apply(&a);
                Box::leak(Box::new((a, b)))
            })
        }
    }
}

/// Like [`cached_pair`] but with a substitutions-only divergence channel,
/// so both members have exactly `len` bases (benches that slice fixed
/// windows out of both sequences need this).
pub fn cached_pair_exact(len: usize, seed: u64) -> &'static (DnaSeq, DnaSeq) {
    static CACHE: OnceLock<parking_lot_free_exact::Registry> = OnceLock::new();
    CACHE
        .get_or_init(parking_lot_free_exact::Registry::default)
        .get(len, seed)
}

mod parking_lot_free_exact {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    #[derive(Default)]
    pub struct Registry {
        map: Mutex<HashMap<(usize, u64), &'static (DnaSeq, DnaSeq)>>,
    }

    impl Registry {
        pub fn get(&self, len: usize, seed: u64) -> &'static (DnaSeq, DnaSeq) {
            let mut map = self.map.lock().expect("registry lock");
            map.entry((len, seed)).or_insert_with(|| {
                let a = ChromosomeGenerator::new(GenerateConfig::sized(len, seed)).generate();
                let (b, _) = DivergenceModel::snp_only(seed + 7, 0.012).apply(&a);
                Box::leak(Box::new((a, b)))
            })
        }
    }
}

/// GCUPS for `cells` over `secs`.
pub fn gcups(cells: u128, secs: f64) -> f64 {
    if secs <= 0.0 {
        0.0
    } else {
        cells as f64 / secs / 1e9
    }
}

/// Render one aligned text table: a header row plus data rows.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = format!("\n== {title} ==\n");
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render the same rows as CSV (for plotting).
pub fn render_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = format!("csv:{name},{}\n", header.join(","));
    for row in rows {
        out.push_str(&format!("csv:{name},{}\n", row.join(",")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_pair_is_cached() {
        let p1 = cached_pair(1_000, 3) as *const _;
        let p2 = cached_pair(1_000, 3) as *const _;
        assert_eq!(p1, p2);
        let p3 = cached_pair(1_000, 4) as *const _;
        assert_ne!(p1, p3);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            "demo",
            &["pair", "GCUPS"],
            &[
                vec!["chrA".into(), "1.0".into()],
                vec!["chrLong".into(), "140.36".into()],
            ],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("140.36"));
        let csv = render_csv("demo", &["pair", "GCUPS"], &[vec!["x".into(), "1".into()]]);
        assert!(csv.contains("csv:demo,pair,GCUPS"));
        assert!(csv.contains("csv:demo,x,1"));
    }

    #[test]
    fn gcups_zero_duration() {
        assert_eq!(gcups(100, 0.0), 0.0);
        assert!((gcups(2_000_000_000, 2.0) - 1.0).abs() < 1e-12);
    }
}
