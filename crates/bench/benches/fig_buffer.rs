//! F3 — circular-buffer effects on the real runtime: pipeline throughput
//! across ring capacities, plus the raw ring's push/pop cost (the overhead
//! the capacity is amortizing). The simulated capacity curve is printed by
//! `paper-tables f3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use megasw::multigpu::circbuf::CircularBuffer;
use megasw::prelude::*;
use megasw_bench::cached_pair;
use std::time::Duration;

fn bench_pipeline_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_pipeline_capacity");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    let (a, b) = cached_pair(8_000, 401);
    let cells = (a.len() * b.len()) as u64;
    let platform = Platform::env1();
    for cap in [1usize, 4, 32] {
        let cfg = RunConfig::paper_default()
            .with_block(256)
            .with_buffer_capacity(cap);
        group.throughput(Throughput::Elements(cells));
        group.bench_with_input(BenchmarkId::new("capacity", cap), &cfg, |bench, cfg| {
            bench.iter(|| {
                run_pipeline(a.codes(), b.codes(), &platform, cfg)
                    .expect("pipeline run failed")
                    .best
            })
        });
    }
    group.finish();
}

fn bench_ring_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_ring_ops");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));

    const ITEMS: u64 = 10_000;
    for cap in [1usize, 8, 64] {
        group.throughput(Throughput::Elements(ITEMS));
        group.bench_with_input(
            BenchmarkId::new("stream_10k", cap),
            &cap,
            |bench, &cap| {
                bench.iter(|| {
                    let ring = CircularBuffer::with_capacity(cap);
                    let producer = {
                        let ring = ring.clone();
                        std::thread::spawn(move || {
                            for i in 0..ITEMS {
                                ring.push(i).unwrap();
                            }
                            ring.close();
                        })
                    };
                    let mut sum = 0u64;
                    while let Some(v) = ring.pop().unwrap() {
                        sum = sum.wrapping_add(v);
                    }
                    producer.join().unwrap();
                    sum
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_capacity, bench_ring_throughput);
criterion_main!(benches);
