//! Execution trace records and analysis.

use crate::stream::ResourceId;
use crate::time::SimTime;

/// What a span of resource time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A wavefront kernel launch.
    Kernel,
    /// A border transfer leaving the device.
    CopyOut,
    /// A border transfer arriving at the device.
    CopyIn,
    /// The instant a device drops out of the chain (fault injection): the
    /// span covers the time lost between the loss and the rewind point.
    DeviceLoss,
    /// Synthetic span kinds used by tests/tools.
    Other,
}

/// One contiguous busy interval of a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    pub resource: ResourceId,
    pub kind: SpanKind,
    /// Free-form tag (e.g. external-diagonal index).
    pub tag: u64,
    pub start: SimTime,
    pub end: SimTime,
}

impl TraceSpan {
    /// Span duration.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// Total busy time of `resource` restricted to spans of `kind`.
pub fn busy_time(spans: &[TraceSpan], resource: ResourceId, kind: SpanKind) -> SimTime {
    spans
        .iter()
        .filter(|s| s.resource == resource && s.kind == kind)
        .fold(SimTime::ZERO, |acc, s| acc + s.duration())
}

/// Idle time of `resource` within `[0, horizon]`: horizon minus all busy
/// spans (spans on one FIFO resource never overlap).
pub fn idle_time(spans: &[TraceSpan], resource: ResourceId, horizon: SimTime) -> SimTime {
    let busy = spans
        .iter()
        .filter(|s| s.resource == resource)
        .fold(SimTime::ZERO, |acc, s| acc + s.duration());
    horizon.saturating_sub(busy)
}

/// Render a coarse ASCII Gantt chart of the given resources ( `#` kernel,
/// `>` copy-out, `<` copy-in, `X` device loss, `.` idle). One row per
/// resource, `width` character cells across the makespan.
pub fn render_gantt(
    spans: &[TraceSpan],
    resources: &[(ResourceId, String)],
    makespan: SimTime,
    width: usize,
) -> String {
    let width = width.max(10);
    let mut out = String::new();
    let total = makespan.as_nanos().max(1);
    for (rid, name) in resources {
        let mut row = vec!['.'; width];
        for s in spans.iter().filter(|s| s.resource == *rid) {
            let c = match s.kind {
                SpanKind::Kernel => '#',
                SpanKind::CopyOut => '>',
                SpanKind::CopyIn => '<',
                SpanKind::DeviceLoss => 'X',
                SpanKind::Other => 'o',
            };
            let lo = (s.start.as_nanos() as u128 * width as u128 / total as u128) as usize;
            let hi = (s.end.as_nanos() as u128 * width as u128 / total as u128) as usize;
            for cell in row.iter_mut().take(hi.min(width - 1) + 1).skip(lo) {
                *cell = c;
            }
        }
        out.push_str(&format!("{name:>18} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(r: usize, kind: SpanKind, t0: u64, t1: u64) -> TraceSpan {
        TraceSpan {
            resource: ResourceId(r),
            kind,
            tag: 0,
            start: SimTime::from_nanos(t0),
            end: SimTime::from_nanos(t1),
        }
    }

    #[test]
    fn busy_and_idle_accounting() {
        let spans = vec![
            span(0, SpanKind::Kernel, 0, 100),
            span(0, SpanKind::CopyOut, 100, 130),
            span(0, SpanKind::Kernel, 150, 250),
            span(1, SpanKind::Kernel, 0, 50),
        ];
        assert_eq!(
            busy_time(&spans, ResourceId(0), SpanKind::Kernel),
            SimTime::from_nanos(200)
        );
        assert_eq!(
            busy_time(&spans, ResourceId(0), SpanKind::CopyOut),
            SimTime::from_nanos(30)
        );
        assert_eq!(
            idle_time(&spans, ResourceId(0), SimTime::from_nanos(250)),
            SimTime::from_nanos(20)
        );
        assert_eq!(
            idle_time(&spans, ResourceId(1), SimTime::from_nanos(250)),
            SimTime::from_nanos(200)
        );
    }

    #[test]
    fn gantt_renders_rows() {
        let spans = vec![
            span(0, SpanKind::Kernel, 0, 500),
            span(1, SpanKind::CopyIn, 500, 1000),
        ];
        let chart = render_gantt(
            &spans,
            &[
                (ResourceId(0), "gpu0".into()),
                (ResourceId(1), "gpu1".into()),
            ],
            SimTime::from_nanos(1000),
            20,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('#'));
        assert!(lines[1].contains('<'));
        // gpu0 busy first half, idle second half.
        assert!(lines[0].matches('#').count() >= 9);
        assert!(lines[0].matches('.').count() >= 8);
    }

    #[test]
    fn span_duration() {
        assert_eq!(
            span(0, SpanKind::Other, 10, 35).duration(),
            SimTime::from_nanos(25)
        );
    }
}
