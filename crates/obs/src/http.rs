//! A std-only HTTP/1.1 endpoint serving live run telemetry and, for the
//! resident alignment service, a small routed API.
//!
//! Post-hoc exports (`--metrics`, `--trace-out`) require the run to
//! finish; a multi-hour megabase comparison deserves a scrape target
//! *while it executes*. This module provides one with zero dependencies:
//! a [`MetricsHub`] that the pipeline publishes snapshots into, and a
//! [`MetricsServer`] — a `TcpListener` accept loop on a background thread
//! answering three built-in routes:
//!
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4) of the
//!   hub's current registry, straight from [`crate::prom::prometheus`].
//! * `GET /health` — a tiny JSON liveness document:
//!   `{"healthy": true, "state": "running"}`.
//! * `GET /flight` — the flight-recorder rings as JSONL (empty body when
//!   no recorder is attached).
//!
//! Everything else is `404`; non-GET methods on the built-in routes are
//! `405`. On top of that, [`MetricsServer::bind_routed`] accepts a
//! [`Handler`]: a closure tried *before* the built-in routes, which is how
//! the alignment service mounts `POST /jobs`, `GET /jobs/:id`,
//! `GET /jobs/:id/events` (a streamed NDJSON [`Response::Stream`]) and
//! `DELETE /jobs/:id` without this crate knowing anything about jobs.
//!
//! Each accepted connection is served on its own short-lived thread (a
//! progress stream must not block a Prometheus scrape), and every request
//! read is bounded by a **total deadline** — not just a per-read timeout.
//! A half-open or byte-trickling client therefore cannot wedge the
//! server: the accept loop keeps polling its stop flag every ~25 ms and
//! the stalled connection is dropped when its deadline expires
//! (regression-tested below with a half-open socket).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::flight::FlightRecorder;
use crate::metrics::MetricsRegistry;
use crate::prom::prometheus;

/// Total wall-clock budget for reading one request (head *and* body). A
/// client that has not delivered a full request within this window is
/// dropped — the fix for the stalled-client wedge: the old code reset its
/// 500 ms read timeout on every byte, so a trickling sender could hold
/// the single-threaded accept loop forever.
const REQUEST_DEADLINE: Duration = Duration::from_secs(2);

/// Largest request body accepted (`413` beyond it). Generous enough for a
/// batch of megabase FASTA texts posted to `/jobs`.
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// Concurrent connection cap; excess connections get a fast `503`.
const MAX_CONNECTIONS: usize = 32;

/// One parsed HTTP request as the router sees it: method, path (query
/// string stripped) and the raw body bytes.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8 text (lossy).
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

/// What a route produces: a complete in-memory body, or a stream of
/// chunks (NDJSON progress events) written as they arrive and terminated
/// by connection close — the reader consumes until EOF, so no chunked
/// framing is needed.
pub enum Response {
    Full {
        status: &'static str,
        content_type: &'static str,
        body: String,
    },
    Stream {
        status: &'static str,
        content_type: &'static str,
        chunks: mpsc::Receiver<String>,
    },
}

impl Response {
    pub fn json(status: &'static str, body: impl Into<String>) -> Response {
        Response::Full {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    pub fn ok_json(body: impl Into<String>) -> Response {
        Response::json("200 OK", body)
    }

    pub fn text(status: &'static str, body: impl Into<String>) -> Response {
        Response::Full {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// A newline-delimited JSON stream: each string received on `chunks`
    /// is written (and flushed) as soon as it arrives; the response ends
    /// when every sender is dropped.
    pub fn ndjson_stream(chunks: mpsc::Receiver<String>) -> Response {
        Response::Stream {
            status: "200 OK",
            content_type: "application/x-ndjson",
            chunks,
        }
    }
}

/// A route hook tried before the built-in `/metrics`, `/health` and
/// `/flight` routes. Return `None` to fall through to them.
pub type Handler = Arc<dyn Fn(&Request) -> Option<Response> + Send + Sync>;

/// Shared state between a running pipeline (writer) and the HTTP server
/// (reader). The pipeline publishes registry snapshots at row-ish
/// cadence; scrapes serve whatever the latest snapshot says.
#[derive(Debug)]
pub struct MetricsHub {
    registry: Mutex<MetricsRegistry>,
    healthy: AtomicBool,
    state: Mutex<String>,
    flight: Mutex<Option<Arc<FlightRecorder>>>,
}

impl MetricsHub {
    pub fn new() -> Arc<MetricsHub> {
        Arc::new(MetricsHub {
            registry: Mutex::new(MetricsRegistry::new()),
            healthy: AtomicBool::new(true),
            state: Mutex::new("starting".to_string()),
            flight: Mutex::new(None),
        })
    }

    /// Replace the served registry with `registry`. Cheap enough to call
    /// per sampling tick: the registry is counters plus small histograms.
    pub fn publish(&self, registry: MetricsRegistry) {
        *self.registry.lock().unwrap() = registry;
    }

    /// Current snapshot (clone) of the served registry.
    pub fn registry(&self) -> MetricsRegistry {
        self.registry.lock().unwrap().clone()
    }

    /// Attach the run's flight recorder so `/flight` serves live rings.
    pub fn attach_flight(&self, flight: Arc<FlightRecorder>) {
        *self.flight.lock().unwrap() = Some(flight);
    }

    /// Update the `/health` document: liveness plus a free-form state
    /// label ("running", "recovering", "done", …).
    pub fn set_health(&self, healthy: bool, state: &str) {
        self.healthy.store(healthy, Ordering::Relaxed);
        *self.state.lock().unwrap() = state.to_string();
    }

    fn health_json(&self) -> String {
        let healthy = self.healthy.load(Ordering::Relaxed);
        let state = self.state.lock().unwrap().clone();
        format!(
            "{{\"healthy\": {}, \"state\": \"{}\"}}\n",
            healthy,
            state.replace('\\', "\\\\").replace('"', "\\\"")
        )
    }

    fn flight_jsonl(&self) -> String {
        match self.flight.lock().unwrap().as_ref() {
            Some(fr) => fr.dump_jsonl(),
            None => String::new(),
        }
    }
}

/// The background HTTP endpoint. Dropping (or calling
/// [`MetricsServer::shutdown`]) stops the accept loop and joins it;
/// in-flight connection threads drain on their own deadlines.
pub struct MetricsServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`, or port `0` for an ephemeral
    /// port — see [`MetricsServer::local_addr`]) and start serving `hub`
    /// on the three built-in routes.
    pub fn bind(addr: &str, hub: Arc<MetricsHub>) -> std::io::Result<MetricsServer> {
        Self::bind_routed(addr, hub, None)
    }

    /// Like [`MetricsServer::bind`], additionally trying `handler` on
    /// every request before the built-in routes.
    pub fn bind_routed(
        addr: &str,
        hub: Arc<MetricsHub>,
        handler: Option<Handler>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("megasw-metrics-http".to_string())
            .spawn(move || serve_loop(listener, hub, handler, stop2))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address — the actual port when bound with port `0`.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_loop(
    listener: TcpListener,
    hub: Arc<MetricsHub>,
    handler: Option<Handler>,
    stop: Arc<AtomicBool>,
) {
    let active = Arc::new(AtomicUsize::new(0));
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if active.load(Ordering::Relaxed) >= MAX_CONNECTIONS {
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                    let _ = stream.write_all(
                        b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
                    );
                    continue;
                }
                active.fetch_add(1, Ordering::Relaxed);
                let hub = Arc::clone(&hub);
                let handler = handler.clone();
                let conn_active = Arc::clone(&active);
                // One thread per connection: a long-lived event stream (or
                // a stalled client waiting out its deadline) must not block
                // the next scrape. A failed spawn only loses that one
                // connection.
                let spawned = std::thread::Builder::new()
                    .name("megasw-http-conn".to_string())
                    .spawn(move || {
                        let _ = handle_connection(stream, &hub, handler.as_ref());
                        conn_active.fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    active.fetch_sub(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    hub: &MetricsHub,
    handler: Option<&Handler>,
) -> std::io::Result<()> {
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let request = match read_request(&mut stream) {
        Ok(req) => req,
        Err(ReadError::TooLarge) => {
            return write_full(
                &mut stream,
                "413 Payload Too Large",
                "text/plain; charset=utf-8",
                "request body too large\n",
            );
        }
        // Deadline expired or the socket died: drop the connection.
        Err(ReadError::Io(e)) => return Err(e),
    };
    let response = handler
        .and_then(|h| h(&request))
        .unwrap_or_else(|| builtin_route(&request, hub));
    match response {
        Response::Full {
            status,
            content_type,
            body,
        } => write_full(&mut stream, status, content_type, &body),
        Response::Stream {
            status,
            content_type,
            chunks,
        } => {
            // No Content-Length: the body runs until connection close,
            // which HTTP/1.1 permits with `Connection: close`.
            let head = format!(
                "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n"
            );
            stream.write_all(head.as_bytes())?;
            stream.flush()?;
            // Ends when every sender is gone; a write error (client hung
            // up) drops the receiver, which in turn unblocks the producer.
            while let Ok(chunk) = chunks.recv() {
                stream.write_all(chunk.as_bytes())?;
                stream.flush()?;
            }
            Ok(())
        }
    }
}

fn write_full(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

enum ReadError {
    TooLarge,
    Io(std::io::Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read one full request — head and `Content-Length` body — under
/// [`REQUEST_DEADLINE`]. Each read's timeout is the *remaining* budget,
/// so progress never resets the clock and a trickling client is cut off
/// at the deadline no matter how often it sends a byte.
fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let deadline = Instant::now() + REQUEST_DEADLINE;
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() >= 64 * 1024 {
            // A head this big is not a scrape or a job submission.
            return Err(ReadError::TooLarge);
        }
        let n = read_some(stream, &mut chunk, deadline)?;
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.lines();
    let mut first = lines.next().unwrap_or("").split_whitespace();
    let method = first.next().unwrap_or("").to_string();
    let path = first.next().unwrap_or("");
    // Ignore any query string: scrapers sometimes append cache-busters.
    let path = path.split('?').next().unwrap_or(path).to_string();
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = read_some(stream, &mut chunk, deadline)?;
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One read bounded by the connection deadline. Errors with `TimedOut`
/// once the deadline has passed or the peer goes quiet past it;
/// `UnexpectedEof` if the peer closes early.
fn read_some(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    deadline: Instant,
) -> Result<usize, ReadError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(ReadError::Io(std::io::ErrorKind::TimedOut.into()));
    }
    stream
        .set_read_timeout(Some(remaining))
        .map_err(ReadError::Io)?;
    match stream.read(chunk) {
        Ok(0) => Err(ReadError::Io(std::io::ErrorKind::UnexpectedEof.into())),
        Ok(n) => Ok(n),
        Err(e) => Err(ReadError::Io(e)),
    }
}

/// The built-in routes: `/metrics`, `/health`, `/flight` (GET only).
fn builtin_route(request: &Request, hub: &MetricsHub) -> Response {
    if request.method != "GET" {
        return Response::Full {
            status: "405 Method Not Allowed",
            content_type: "text/plain; charset=utf-8",
            body: "method not allowed\n".to_string(),
        };
    }
    match request.path.as_str() {
        "/metrics" => Response::Full {
            status: "200 OK",
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: prometheus(&hub.registry.lock().unwrap()),
        },
        "/health" => Response::ok_json(hub.health_json()),
        "/flight" => Response::Full {
            status: "200 OK",
            content_type: "application/x-ndjson",
            body: hub.flight_jsonl(),
        },
        _ => Response::text(
            "404 Not Found",
            "not found; try /metrics, /health or /flight\n".to_string(),
        ),
    }
}

/// Minimal std-only HTTP client: one request against `addr`, returning
/// `(head, body)` where `head` is the status line plus every response
/// header. Shared by the CLI's `submit` client, the `metrics_scrape`
/// binary and the tests so CI exercises the same code path. Reads to EOF,
/// so it also consumes streamed (`Connection: close`) bodies such as
/// `/jobs/:id/events`.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.find("\r\n\r\n") {
        Some(i) => Ok((raw[..i].to_string(), raw[i + 4..].to_string())),
        None => Ok((raw.lines().next().unwrap_or("").to_string(), String::new())),
    }
}

/// `GET path` against `addr`.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(String, String)> {
    http_request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
pub fn http_post(addr: &str, path: &str, body: &str) -> std::io::Result<(String, String)> {
    http_request(addr, "POST", path, Some(body))
}

/// `DELETE path` against `addr`.
pub fn http_delete(addr: &str, path: &str) -> std::io::Result<(String, String)> {
    http_request(addr, "DELETE", path, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{FlightEvent, FlightKind, FlightRecorder};
    use crate::json;
    use crate::prom::validate_exposition;

    fn hub_with_data() -> Arc<MetricsHub> {
        let hub = MetricsHub::new();
        let mut reg = MetricsRegistry::new();
        reg.incr("stall.startup_ns", 123);
        reg.incr("attr.d0.wait_input_ns", 456);
        reg.observe("gcups.device", 17.5);
        hub.publish(reg);
        hub.set_health(true, "running");
        hub
    }

    #[test]
    fn metrics_endpoint_serves_valid_exposition() {
        let hub = hub_with_data();
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&hub)).unwrap();
        let addr = server.local_addr().to_string();
        let (status, body) = http_get(&addr, "/metrics").unwrap();
        assert!(status.contains("200"), "{status}");
        let summary = validate_exposition(&body).expect("served exposition must validate");
        assert!(summary.families >= 3, "{summary:?}");
        assert!(body.contains("megasw_stall_startup_ns"), "{body}");
        server.shutdown();
    }

    #[test]
    fn health_endpoint_reflects_hub_state() {
        let hub = hub_with_data();
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&hub)).unwrap();
        let addr = server.local_addr().to_string();
        let (status, body) = http_get(&addr, "/health").unwrap();
        assert!(status.contains("200"), "{status}");
        let v = json::parse(body.trim()).unwrap();
        assert_eq!(v.get("healthy"), Some(&json::Value::Bool(true)));
        assert_eq!(v.get("state").unwrap().as_str(), Some("running"));
        hub.set_health(false, "recovering");
        let (_, body) = http_get(&addr, "/health").unwrap();
        let v = json::parse(body.trim()).unwrap();
        assert_eq!(v.get("healthy"), Some(&json::Value::Bool(false)));
        assert_eq!(v.get("state").unwrap().as_str(), Some("recovering"));
        server.shutdown();
    }

    #[test]
    fn flight_endpoint_serves_the_rings_and_unknown_paths_404() {
        let hub = hub_with_data();
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&hub)).unwrap();
        let addr = server.local_addr().to_string();
        // No recorder attached yet: empty body, still 200.
        let (status, body) = http_get(&addr, "/flight").unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(body.is_empty(), "{body}");
        let fr = FlightRecorder::new(1, 8);
        fr.record(
            0,
            FlightEvent {
                kind: FlightKind::Fault,
                device: 2,
                row: 40,
                t_ns: 99,
                dur_ns: 0,
                aux: 0,
            },
        );
        hub.attach_flight(Arc::clone(&fr));
        let (_, body) = http_get(&addr, "/flight").unwrap();
        assert_eq!(body.lines().count(), 1);
        assert!(json::parse(body.trim()).is_ok(), "{body}");
        let (status, _) = http_get(&addr, "/nope").unwrap();
        assert!(status.contains("404"), "{status}");
        server.shutdown();
    }

    #[test]
    fn non_get_methods_are_rejected_on_builtin_routes() {
        let hub = MetricsHub::new();
        let server = MetricsServer::bind("127.0.0.1:0", hub).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
        server.shutdown();
    }

    #[test]
    fn routed_handler_sees_method_path_and_body() {
        let hub = MetricsHub::new();
        let handler: Handler =
            Arc::new(
                |req: &Request| match (req.method.as_str(), req.path.as_str()) {
                    ("POST", "/echo") => Some(Response::ok_json(format!(
                        "{{\"got\": \"{}\"}}",
                        req.body_str()
                    ))),
                    ("DELETE", "/echo") => Some(Response::json("200 OK", "{\"deleted\": true}")),
                    _ => None,
                },
            );
        let server = MetricsServer::bind_routed("127.0.0.1:0", hub, Some(handler)).unwrap();
        let addr = server.local_addr().to_string();
        let (status, body) = http_post(&addr, "/echo", "ping").unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"got\": \"ping\""), "{body}");
        let (status, body) = http_delete(&addr, "/echo").unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("deleted"), "{body}");
        // Unmatched paths still fall through to the built-in routes.
        let (status, _) = http_get(&addr, "/health").unwrap();
        assert!(status.contains("200"), "{status}");
        let (status, _) = http_get(&addr, "/jobs/999").unwrap();
        assert!(status.contains("404"), "{status}");
        server.shutdown();
    }

    #[test]
    fn streamed_response_delivers_every_chunk() {
        let hub = MetricsHub::new();
        let handler: Handler = Arc::new(|req: &Request| {
            (req.path == "/events").then(|| {
                let (tx, rx) = mpsc::sync_channel::<String>(8);
                std::thread::spawn(move || {
                    for i in 0..5 {
                        tx.send(format!("{{\"tick\": {i}}}\n")).unwrap();
                        std::thread::sleep(Duration::from_millis(5));
                    }
                });
                Response::ndjson_stream(rx)
            })
        });
        let server = MetricsServer::bind_routed("127.0.0.1:0", hub, Some(handler)).unwrap();
        let addr = server.local_addr().to_string();
        let (status, body) = http_get(&addr, "/events").unwrap();
        assert!(status.contains("200"), "{status}");
        assert_eq!(body.lines().count(), 5, "{body}");
        for (i, line) in body.lines().enumerate() {
            let v = json::parse(line).unwrap();
            assert_eq!(v.get("tick").unwrap().as_f64(), Some(i as f64));
        }
        server.shutdown();
    }

    /// The stalled-client regression (half-open socket): a connection that
    /// sends a partial request head and then goes silent must neither
    /// block other clients nor be kept around past the request deadline.
    #[test]
    fn half_open_socket_cannot_wedge_the_server() {
        let hub = hub_with_data();
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&hub)).unwrap();
        let addr = server.local_addr().to_string();

        let mut stalled = TcpStream::connect(&addr).unwrap();
        stalled.write_all(b"GET /metr").unwrap(); // …and never finish.

        // Other clients are served promptly while the stalled connection
        // is still open.
        let t = Instant::now();
        let (status, _) = http_get(&addr, "/metrics").unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(
            t.elapsed() < Duration::from_secs(1),
            "scrape stalled behind a half-open connection: {:?}",
            t.elapsed()
        );

        // The server drops the stalled connection once its total deadline
        // expires (read returns EOF / reset rather than hanging forever).
        stalled
            .set_read_timeout(Some(REQUEST_DEADLINE + Duration::from_secs(3)))
            .unwrap();
        let mut buf = [0u8; 64];
        match stalled.read(&mut buf) {
            Ok(0) => {} // clean close
            Ok(n) => panic!("unexpected {n} bytes on a half-open socket"),
            Err(e) => assert!(
                e.kind() != std::io::ErrorKind::WouldBlock
                    && e.kind() != std::io::ErrorKind::TimedOut,
                "server never closed the half-open connection: {e}"
            ),
        }
        server.shutdown();
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let hub = MetricsHub::new();
        let server = MetricsServer::bind("127.0.0.1:0", hub).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let head = format!(
            "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        stream.write_all(head.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 413"), "{raw}");
        server.shutdown();
    }
}
