//! Synthetic chromosome generation.
//!
//! Real chromosomes are not uniform random strings: they have biased GC
//! content that drifts along the sequence (isochores), tandem repeats
//! (microsatellites), interspersed repeats (Alu/LINE-like elements that
//! reappear thousands of times), and runs of `N` at assembly gaps. All of
//! these shape the Smith-Waterman score landscape — repeats create
//! off-diagonal partial matches, gaps create score deserts — so the
//! generator reproduces them at configurable rates.
//!
//! Determinism: generation is driven entirely by the seed in
//! [`GenerateConfig`], using ChaCha8 (portable across platforms and rand
//! releases).

use crate::alphabet::{Nucleotide, N_CODE};
use crate::dna::DnaSeq;
use crate::rng::ChaCha8Rng;

/// Configuration for [`ChromosomeGenerator`].
#[derive(Debug, Clone)]
pub struct GenerateConfig {
    /// Target length in bases.
    pub length: usize,
    /// RNG seed; same seed + config ⇒ identical sequence.
    pub seed: u64,
    /// Mean GC fraction (human genome ≈ 0.41).
    pub gc_content: f64,
    /// Amplitude of the slow GC drift along the chromosome (isochores).
    pub gc_drift: f64,
    /// Period, in bases, of the GC drift.
    pub gc_drift_period: usize,
    /// Expected fraction of the sequence covered by tandem repeats.
    pub tandem_repeat_fraction: f64,
    /// Expected fraction covered by interspersed repeat elements.
    pub interspersed_repeat_fraction: f64,
    /// Length of the interspersed repeat consensus element (Alu ≈ 300).
    pub repeat_element_len: usize,
    /// Per-base substitution rate applied to each repeat copy (repeats decay).
    pub repeat_decay: f64,
    /// Number of assembly gaps (`N` runs) to insert.
    pub assembly_gaps: usize,
    /// Length of each assembly gap.
    pub assembly_gap_len: usize,
}

impl Default for GenerateConfig {
    fn default() -> Self {
        GenerateConfig {
            length: 1_000_000,
            seed: 0x5EED_0001,
            gc_content: 0.41,
            gc_drift: 0.08,
            gc_drift_period: 200_000,
            tandem_repeat_fraction: 0.03,
            interspersed_repeat_fraction: 0.10,
            repeat_element_len: 300,
            repeat_decay: 0.10,
            assembly_gaps: 2,
            assembly_gap_len: 5_000,
        }
    }
}

impl GenerateConfig {
    /// A config for a given length with everything else at defaults.
    pub fn sized(length: usize, seed: u64) -> Self {
        GenerateConfig {
            length,
            seed,
            ..Default::default()
        }
    }

    /// Uniform i.i.d. bases — no repeats, no gaps, flat GC. Useful in tests
    /// where structure would get in the way.
    pub fn uniform(length: usize, seed: u64) -> Self {
        GenerateConfig {
            length,
            seed,
            gc_content: 0.5,
            gc_drift: 0.0,
            tandem_repeat_fraction: 0.0,
            interspersed_repeat_fraction: 0.0,
            assembly_gaps: 0,
            ..Default::default()
        }
    }
}

/// Seeded synthetic chromosome generator. See the module docs for the model.
///
/// ```
/// use megasw_seq::{ChromosomeGenerator, GenerateConfig};
///
/// let chr = ChromosomeGenerator::new(GenerateConfig::sized(50_000, 42)).generate();
/// assert_eq!(chr.len(), 50_000);
/// // Same seed, same chromosome — experiments are bit-reproducible.
/// let again = ChromosomeGenerator::new(GenerateConfig::sized(50_000, 42)).generate();
/// assert_eq!(chr, again);
/// ```
#[derive(Debug, Clone)]
pub struct ChromosomeGenerator {
    config: GenerateConfig,
}

impl ChromosomeGenerator {
    /// Create a generator with the given configuration.
    pub fn new(config: GenerateConfig) -> Self {
        ChromosomeGenerator { config }
    }

    /// Generate the chromosome.
    pub fn generate(&self) -> DnaSeq {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut codes: Vec<u8> = Vec::with_capacity(cfg.length);

        // Consensus for the interspersed repeat family, drawn once.
        let element: Vec<u8> = (0..cfg.repeat_element_len.max(1))
            .map(|_| sample_base(&mut rng, cfg.gc_content))
            .collect();

        while codes.len() < cfg.length {
            let remaining = cfg.length - codes.len();
            let roll: f64 = rng.gen();
            if roll < cfg.tandem_repeat_fraction {
                emit_tandem_repeat(&mut codes, &mut rng, remaining, cfg.gc_content);
            } else if roll < cfg.tandem_repeat_fraction + cfg.interspersed_repeat_fraction {
                emit_repeat_copy(&mut codes, &mut rng, &element, remaining, cfg.repeat_decay);
            } else {
                // A stretch of "unique" background sequence with GC drift.
                let stretch = remaining.min(rng.gen_range(200usize..2_000));
                for _ in 0..stretch {
                    let pos = codes.len();
                    let gc = drifted_gc(cfg, pos);
                    codes.push(sample_base(&mut rng, gc));
                }
            }
        }
        codes.truncate(cfg.length);

        insert_assembly_gaps(&mut codes, &mut rng, cfg);

        DnaSeq::from_codes(codes).expect("generator emits only valid codes")
    }
}

/// GC fraction at a position, applying sinusoidal isochore drift.
fn drifted_gc(cfg: &GenerateConfig, pos: usize) -> f64 {
    if cfg.gc_drift == 0.0 || cfg.gc_drift_period == 0 {
        return cfg.gc_content;
    }
    let phase = (pos as f64 / cfg.gc_drift_period as f64) * std::f64::consts::TAU;
    (cfg.gc_content + cfg.gc_drift * phase.sin()).clamp(0.05, 0.95)
}

/// Draw one base with the given GC probability (G/C split evenly, A/T split
/// evenly).
fn sample_base(rng: &mut ChaCha8Rng, gc: f64) -> u8 {
    let r: f64 = rng.gen();
    if r < gc {
        if rng.gen::<bool>() {
            Nucleotide::G.code()
        } else {
            Nucleotide::C.code()
        }
    } else if rng.gen::<bool>() {
        Nucleotide::A.code()
    } else {
        Nucleotide::T.code()
    }
}

/// Emit a microsatellite: unit length 1..=6, copy number 5..=50.
fn emit_tandem_repeat(codes: &mut Vec<u8>, rng: &mut ChaCha8Rng, remaining: usize, gc: f64) {
    let unit_len = rng.gen_range(1..=6usize);
    let unit: Vec<u8> = (0..unit_len).map(|_| sample_base(rng, gc)).collect();
    let copies = rng.gen_range(5..=50usize);
    let total = (unit_len * copies).min(remaining);
    for i in 0..total {
        codes.push(unit[i % unit_len]);
    }
}

/// Emit one decayed copy of the interspersed repeat element.
fn emit_repeat_copy(
    codes: &mut Vec<u8>,
    rng: &mut ChaCha8Rng,
    element: &[u8],
    remaining: usize,
    decay: f64,
) {
    let take = element.len().min(remaining);
    for &base in &element[..take] {
        let b = if rng.gen::<f64>() < decay {
            rng.gen_range(0..4u8)
        } else {
            base
        };
        codes.push(b);
    }
}

/// Overwrite `assembly_gaps` random windows with N runs.
fn insert_assembly_gaps(codes: &mut [u8], rng: &mut ChaCha8Rng, cfg: &GenerateConfig) {
    if cfg.assembly_gaps == 0 || cfg.assembly_gap_len == 0 {
        return;
    }
    let len = codes.len();
    if len <= cfg.assembly_gap_len {
        return;
    }
    for _ in 0..cfg.assembly_gaps {
        let start = rng.gen_range(0..len - cfg.assembly_gap_len);
        for c in codes.iter_mut().skip(start).take(cfg.assembly_gap_len) {
            *c = N_CODE;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length() {
        for len in [0usize, 1, 100, 10_000] {
            let s = ChromosomeGenerator::new(GenerateConfig::sized(len, 7)).generate();
            assert_eq!(s.len(), len);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = ChromosomeGenerator::new(GenerateConfig::sized(50_000, 42)).generate();
        let b = ChromosomeGenerator::new(GenerateConfig::sized(50_000, 42)).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChromosomeGenerator::new(GenerateConfig::sized(10_000, 1)).generate();
        let b = ChromosomeGenerator::new(GenerateConfig::sized(10_000, 2)).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn gc_content_near_target() {
        let mut cfg = GenerateConfig::sized(200_000, 9);
        cfg.gc_content = 0.41;
        cfg.assembly_gaps = 0;
        let s = ChromosomeGenerator::new(cfg).generate();
        let gc = s.gc_fraction();
        assert!((gc - 0.41).abs() < 0.04, "gc = {gc}");
    }

    #[test]
    fn uniform_config_has_no_ns_and_flat_gc() {
        let s = ChromosomeGenerator::new(GenerateConfig::uniform(100_000, 3)).generate();
        assert_eq!(s.n_count(), 0);
        assert!((s.gc_fraction() - 0.5).abs() < 0.02);
    }

    #[test]
    fn assembly_gaps_present() {
        let mut cfg = GenerateConfig::sized(100_000, 11);
        cfg.assembly_gaps = 3;
        cfg.assembly_gap_len = 1_000;
        let s = ChromosomeGenerator::new(cfg).generate();
        // Gaps may overlap, so at least one gap's worth and at most three.
        assert!(s.n_count() >= 1_000, "n_count = {}", s.n_count());
        assert!(s.n_count() <= 3_000);
    }

    #[test]
    fn extreme_gc_targets_clamped_and_respected() {
        let mut cfg = GenerateConfig::uniform(50_000, 5);
        cfg.gc_content = 0.9;
        let s = ChromosomeGenerator::new(cfg).generate();
        assert!(s.gc_fraction() > 0.85);
    }
}
