//! The `megasw` command-line tool.
//!
//! ```text
//! megasw generate --length 1000000 --seed 42 --out-human h.fa --out-chimp c.fa
//! megasw compare  <a.fasta> <b.fasta> [--gpus N] [--env1|--env2] [--block N]
//!                 [--capacity N] [--equal]
//! megasw align    <a.fasta> <b.fasta> [--width N] [same platform flags]
//! megasw simulate --m 47000000 --n 49000000 [--env1|--env2] [--gantt]
//! megasw tune     --m 4000000 --n 4000000 [--env1|--env2]
//! ```
//!
//! Argument parsing is deliberately dependency-free (a tiny `ArgStream`
//! helper below); every subcommand maps onto the public library API, so
//! this binary doubles as living documentation of the crate surface.

use megasw::gpusim::trace::render_gantt;
use megasw::multigpu::autotune::autotune;
use megasw::multigpu::stages::multigpu_local_align_live;
use megasw::prelude::*;
use megasw::seq::fasta::{read_single_fasta, write_fasta, FastaRecord};
use std::fs::File;
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `megasw help` for usage");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut stream = ArgStream::new(args);
    match stream.next_positional().as_deref() {
        Some("generate") => cmd_generate(stream),
        Some("compare") => cmd_compare(stream),
        Some("batch") => cmd_batch(stream),
        Some("align") => cmd_align(stream),
        Some("simulate") => cmd_simulate(stream),
        Some("tune") => cmd_tune(stream),
        Some("screen") => cmd_screen(stream),
        Some("serve") => cmd_serve(stream),
        Some("submit") => cmd_submit(stream),
        Some("serve-metrics") => cmd_serve_metrics(stream),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

const USAGE: &str = "\
megasw — fine-grain multi-GPU megabase Smith-Waterman (simulated platform)

subcommands:
  generate  --length N [--seed S] [--divergence human-chimp|snp:RATE|none]
            [--out-human PATH] [--out-chimp PATH]
            write a synthetic homologous FASTA pair
  compare   A.fasta B.fasta [platform flags]
            stage 1: best score and end point, plus the simulated GCUPS
  batch     A.fasta B.fasta | --manifest FILE   [platform flags]
            [--threshold-cells N] [--bins N] [--scores]
            many-pair batch engine: record i of A aligns against record i
            of B (or one `a.fa b.fa` line per pair in --manifest FILE);
            pairs are length-sorted into bins and drained over a device
            work-queue — small pairs dispatched whole to idle devices,
            pairs with >= N cells (--threshold-cells, default 16777216)
            through the full slab pipeline; prints the BatchReport
            (aggregate GCUPS + latency percentiles; --scores adds the
            per-pair score table) and the DES twin's packed-vs-serial
            packing speedup
  align     A.fasta B.fasta [--width N] [platform flags]
            stages 1-3: retrieve and render the optimal local alignment
  simulate  --m ROWS --n COLS [platform flags] [--identity Q] [--gantt]
            [--drift DEV:ROW:FACTOR[,..]]
            discrete-event run (no sequence data needed); --identity Q
            (0..=1) sets the modelled pair identity the pruning mirror
            uses (default 0.25, i.e. unrelated sequences); --drift
            multiplies device DEV's clock by FACTOR from block-row ROW
            onward (0.5 = thermal throttling halves it) — pair with
            --rebalance on to watch the controller shift columns
  tune      --m ROWS --n COLS [platform flags]
            sweep block height x ring capacity on the simulator
  screen    A.fasta B.fasta [--k N] [--plot]
            alignment-free prefilter: k-mer Jaccard similarity, estimated
            alignment band, optional ASCII dotplot
  serve     --addr HOST:PORT [platform flags] [kernel-policy flags]
            [--recover [--max-device-failures N]] [--events-interval-ms N]
            resident alignment service: owns the platform and drains a
            prioritized job queue submitted over HTTP (POST /jobs,
            GET /jobs[/ID[/events]], DELETE /jobs/ID, plus /metrics,
            /health, /flight); the kernel-policy flags set the per-job
            defaults, --recover makes every job survive device loss, and
            per-job latency p50/p99 SLOs land on /metrics; runs until
            killed, printing each completed job
  submit    --addr HOST:PORT  A.fasta B.fasta
            | --batch A.fasta B.fasta | --manifest FILE | --cancel ID
            [--priority N] [--scores] [--no-wait] [kernel-policy flags]
            [--fault SPEC | --batch-fault PAIR@DEV:ROW[:PHASE],..]
            HTTP client for a running `megasw serve`: submits one pair
            (or a record-by-record batch) as a job, forwards exactly the
            policy flags you give (the rest stay on the server's
            defaults), then polls the job to completion (--no-wait just
            prints the id; --cancel ID sends DELETE instead)
  serve-metrics
            --metrics-addr HOST:PORT [--length N] [--seed S] [--runs N]
            [platform flags] [kernel-policy flags]
            run synthetic comparisons in a loop (forever unless --runs is
            given) while serving /metrics, /health and /flight over HTTP;
            point Prometheus or `megasw-metrics-scrape` at it

platform flags:
  --env1            2x GTX 680 (default: env2)
  --env2            GTX Titan + Tesla K20 + GTX 580
  --gpus N          use only the first N devices
  --block N         square tile side (default 512)
  --capacity N      ring capacity in borders (default 8)

kernel-policy flags (compare, align, simulate, tune):
  --kernel ENGINE   DP engine: auto | scalar | sse41 | avx2 (default auto);
                    auto picks the widest SIMD engine the CPU supports,
                    forcing an unsupported engine is an error — every
                    engine returns bit-identical results
  --prune MODE      block pruning: off | local | distributed (default off);
                    local skips tiles its own device has already beaten,
                    distributed also folds neighbour watermarks from the
                    ring and a shared global watermark — the best score
                    stays bit-identical either way
  --equal           equal split instead of performance-proportional
  --checkpoint-rows N
                    checkpoint every N block-rows (default 8)
  --rebalance MODE  off | on | on:THRESHOLD (default off) — re-split the
                    column slabs at checkpoint boundaries when the predicted
                    makespan improvement clears THRESHOLD (default 0.05);
                    workers resume from the boundary checkpoint's full-width
                    border wave, so no cell is recomputed and the score
                    stays bit-identical (needs a checkpoint cadence)

fault-tolerance flags (compare, simulate):
  --fault SPEC      inject deterministic device failures; SPEC is a
                    comma-separated list of DEV:ROW[:PHASE] with PHASE one
                    of ring-pop|compute|ring-push|transfer (default compute)
  --recover         survive injected failures: blacklist the device,
                    repartition its columns across the survivors, rewind to
                    the newest checkpoint wave and resume (bit-identical
                    score; recovery accounting printed with the report)
  --max-device-failures N
                    give up after N device failures (default 1; needs
                    --recover)

observability flags (compare, align, simulate):
  --trace-out PATH  write a Chrome trace-event JSON of the run; open it in
                    chrome://tracing or https://ui.perfetto.dev
  --metrics         print the per-run metrics registry (GCUPS, ring
                    occupancy, stall accounting, span-duration percentiles)
  --metrics-format F
                    text | prom | json — how --metrics renders (default text;
                    prom is Prometheus text exposition)
  --obs-level L     off | kernels | full — how much the recorder keeps
                    (default: full when --trace-out is given, off otherwise)
  --progress        live progress line on stderr while the run executes:
                    percent done, instantaneous + cumulative GCUPS,
                    per-device imbalance and ring occupancy
  --progress-interval-ms N
                    sampling interval for --progress (default 500)
  --metrics-addr HOST:PORT
                    serve /metrics (Prometheus text), /health (JSON) and
                    /flight (JSONL flight recorder) over HTTP while the run
                    executes; live counters are republished continuously
                    and the final registry stays up until the command exits
                    (compare and simulate; port 0 picks a free port)
  --flight-dump PATH
                    keep a flight recorder (a ring of the last 256 events
                    per device) and dump it as JSONL to PATH when the run
                    ends — faulted or not (compare only)
";

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

fn cmd_generate(mut args: ArgStream) -> Result<(), String> {
    let length: usize = args.flag_value("--length")?.ok_or("--length is required")?;
    let seed: u64 = args.flag_value("--seed")?.unwrap_or(42);
    let divergence = args
        .flag_str("--divergence")
        .unwrap_or_else(|| "human-chimp".into());
    let out_human = args
        .flag_str("--out-human")
        .unwrap_or_else(|| "human.fasta".into());
    let out_chimp = args
        .flag_str("--out-chimp")
        .unwrap_or_else(|| "chimp.fasta".into());
    args.finish()?;

    let human = ChromosomeGenerator::new(GenerateConfig::sized(length, seed)).generate();
    let model = parse_divergence(&divergence, seed, length)?;
    let (chimp, summary) = model.apply(&human);

    write_one(&out_human, "human synthetic", &human)?;
    write_one(&out_chimp, "chimp synthetic", &chimp)?;
    println!(
        "wrote {} ({} bp) and {} ({} bp); {} SNPs, {} indel events",
        out_human,
        human.len(),
        out_chimp,
        chimp.len(),
        summary.substitutions,
        summary.insertions + summary.deletions
    );
    Ok(())
}

fn cmd_compare(mut args: ArgStream) -> Result<(), String> {
    let platform = cli_policy::parse_platform(&mut args)?;
    let cp = cli_policy::parse(&mut args)?;
    let config = cli_policy::parse_config(&mut args, cp.policy)?;
    let obs_opts = parse_obs(&mut args)?;
    let (faults, recovery) = (cp.faults, cp.recovery);
    let path_a = args.next_positional().ok_or("missing first FASTA path")?;
    let path_b = args.next_positional().ok_or("missing second FASTA path")?;
    args.finish()?;

    let a = load_fasta(&path_a)?;
    let b = load_fasta(&path_b)?;
    println!(
        "comparing {} ({} bp) x {} ({} bp) on {}",
        a.id(),
        a.seq.len(),
        b.id(),
        b.seq.len(),
        platform.name
    );

    let obs = obs_opts.recorder();
    let live = LiveTelemetry::new(
        platform.len(),
        (a.seq.len() as u64).saturating_mul(b.seq.len() as u64),
    );
    let sampler = obs_opts.spawn_progress(&live);
    let flight = obs_opts.flight(platform.len());
    let mut service = obs_opts.serve(&live, flight.as_ref())?;
    let mut run = PipelineRun::new(a.seq.codes(), b.seq.codes(), &platform)
        .config(config.clone())
        .observer(obs.clone())
        .live(Arc::clone(&live))
        .faults(faults);
    if let Some(fr) = &flight {
        run = run.flight(Arc::clone(fr));
    }
    if let Some(path) = &obs_opts.flight_dump {
        run = run.flight_dump_path(path);
    }
    if let Some(policy) = recovery {
        run = run.recover(policy);
    }
    let result = run.run();
    finish_progress(sampler);
    if let Some(path) = &obs_opts.flight_dump {
        println!("flight recorder dumped to {path}");
    }
    let report = match result {
        Ok(report) => report,
        Err(e) => {
            if let Some(svc) = service.as_mut() {
                svc.finish(live_registry(&live.snapshot()), false, "faulted");
            }
            return Err(e.to_string());
        }
    };
    let registry = report.metrics_with_spans(&obs.spans());
    print!("{report}");
    if obs_opts.metrics {
        obs_opts.print_metrics(&registry);
    }
    if let Some(svc) = service.as_mut() {
        svc.finish(registry, true, "complete");
    }
    obs_opts.export(&obs, &platform)?;

    let sim = DesSim::new(a.seq.len(), b.seq.len(), &platform)
        .config(config)
        .run();
    println!(
        "simulated on {}: {} ({:.2} GCUPS)",
        platform.name,
        sim.report.sim_time.unwrap(),
        sim.report.gcups_sim.unwrap()
    );
    if let Err(e) = sim.memory {
        println!("warning: {e}");
    }
    Ok(())
}

fn cmd_batch(mut args: ArgStream) -> Result<(), String> {
    let platform = cli_policy::parse_platform(&mut args)?;
    let cp = cli_policy::parse(&mut args)?;
    cp.reject_faults("batch")?;
    let config = cli_policy::parse_config(&mut args, cp.policy)?;
    let obs_opts = parse_obs(&mut args)?;
    obs_opts.reject_serving("batch")?;
    if obs_opts.trace_out.is_some() {
        return Err("batch does not support --trace-out".into());
    }
    let manifest = args.flag_str("--manifest");
    let threshold = args.flag_value::<u128>("--threshold-cells")?;
    let bins = args.flag_value::<usize>("--bins")?;
    let show_scores = args.take_flag("--scores");

    let jobs = if let Some(m) = manifest {
        if args.next_positional().is_some() {
            return Err("--manifest replaces the positional FASTA paths".into());
        }
        args.finish()?;
        jobs_from_manifest(&m)?
    } else {
        let pa = args
            .next_positional()
            .ok_or("batch needs two many-record FASTA paths or --manifest FILE")?;
        let pb = args.next_positional().ok_or("missing second FASTA path")?;
        args.finish()?;
        jobs_from_fasta_pair(&pa, &pb)?
    };
    if jobs.is_empty() {
        return Err("batch has no pairs".into());
    }

    let mut bcfg = BatchConfig::default().with_base(config);
    if let Some(t) = threshold {
        bcfg = bcfg.with_large_threshold_cells(t);
    }
    if let Some(b) = bins {
        bcfg = bcfg.with_bins(b);
    }
    bcfg.validate()?;

    let total_cells: u128 = jobs.iter().map(BatchJob::cells).sum();
    println!(
        "batching {} pairs ({:.3e} cells) on {}",
        jobs.len(),
        total_cells as f64,
        platform.name
    );

    let live = LiveTelemetry::new(
        platform.len(),
        u64::try_from(total_cells).unwrap_or(u64::MAX),
    );
    let sampler = obs_opts.spawn_progress(&live);
    let result = BatchRun::new(&jobs, &platform)
        .config(bcfg.clone())
        .live(Arc::clone(&live))
        .run();
    finish_progress(sampler);
    let report = result.map_err(|e| e.to_string())?;
    println!("{report}");
    if show_scores {
        for p in &report.pairs {
            println!(
                "  pair {:>5}  {:<24} {:>9} x {:<9} score {:>9}{}",
                p.pair,
                p.id,
                p.m,
                p.n,
                p.best.score,
                if p.large { "  [pipeline]" } else { "" }
            );
        }
    }
    if obs_opts.metrics {
        obs_opts.print_metrics(&report.metrics());
    }

    let specs: Vec<BatchSpec> = jobs
        .iter()
        .map(|j| BatchSpec {
            m: j.a.len(),
            n: j.b.len(),
        })
        .collect();
    let sim = BatchSim::new(&specs, &platform).config(bcfg).run();
    println!("{sim}");
    Ok(())
}

fn cmd_align(mut args: ArgStream) -> Result<(), String> {
    let platform = cli_policy::parse_platform(&mut args)?;
    let cp = cli_policy::parse(&mut args)?;
    cp.reject_faults("align")?;
    let config = cli_policy::parse_config(&mut args, cp.policy)?;
    let obs_opts = parse_obs(&mut args)?;
    obs_opts.reject_serving("align")?;
    let width: usize = args.flag_value("--width")?.unwrap_or(72);
    let path_a = args.next_positional().ok_or("missing first FASTA path")?;
    let path_b = args.next_positional().ok_or("missing second FASTA path")?;
    args.finish()?;

    let a = load_fasta(&path_a)?;
    let b = load_fasta(&path_b)?;
    let obs = obs_opts.recorder();
    // Sized for the forward matrix; stage 2's reversed-prefix rerun can
    // push the fraction past 1, which the snapshot clamps to 100%.
    let live = LiveTelemetry::new(
        platform.len(),
        (a.seq.len() as u64).saturating_mul(b.seq.len() as u64),
    );
    let sampler = obs_opts.spawn_progress(&live);
    let (aln, times) = multigpu_local_align_live(
        a.seq.codes(),
        b.seq.codes(),
        &platform,
        &config,
        &obs,
        Some(&live),
    )
    .map_err(|e| e.to_string())?;
    finish_progress(sampler);
    obs_opts.export(&obs, &platform)?;
    if aln.is_empty() {
        println!("no positive-scoring local alignment");
        return Ok(());
    }
    println!(
        "score {} | a[{}..={}] x b[{}..={}] | {} columns | identity {:.2}%",
        aln.score,
        aln.start_i,
        aln.end_i,
        aln.start_j,
        aln.end_j,
        aln.len(),
        aln.identity() * 100.0
    );
    println!(
        "stages: 1 {:?}  2 {:?}  3 {:?}",
        times.stage1, times.stage2, times.stage3
    );
    println!("CIGAR: {}\n", aln.cigar());
    print!(
        "{}",
        render_alignment(a.seq.codes(), b.seq.codes(), &aln, width)
    );
    Ok(())
}

fn cmd_simulate(mut args: ArgStream) -> Result<(), String> {
    let platform = cli_policy::parse_platform(&mut args)?;
    let cp = cli_policy::parse(&mut args)?;
    let config = cli_policy::parse_config(&mut args, cp.policy)?;
    let obs_opts = parse_obs(&mut args)?;
    let (faults, recovery) = (cp.faults, cp.recovery);
    let m: usize = args.flag_value("--m")?.ok_or("--m is required")?;
    let n: usize = args.flag_value("--n")?.ok_or("--n is required")?;
    let identity: Option<f64> = args.flag_value("--identity")?;
    if let Some(q) = identity {
        if !(0.0..=1.0).contains(&q) {
            return Err("--identity must be within 0..=1".into());
        }
    }
    let drifts = match args.flag_str("--drift") {
        Some(spec) => parse_drifts(&spec, platform.len())?,
        None => Vec::new(),
    };
    let gantt = args.take_flag("--gantt");
    args.finish()?;
    if obs_opts.flight_dump.is_some() {
        return Err("simulate does not record a flight box; --flight-dump needs compare".into());
    }

    let obs = obs_opts.recorder();
    // The DES solves the schedule instantaneously and replays kernel
    // completions through a manual (simulated-time) clock, so the progress
    // line reports the run's *simulated* trajectory: render the final
    // snapshot rather than racing a sampler against the replay.
    let live =
        LiveTelemetry::with_manual_clock(platform.len(), (m as u64).saturating_mul(n as u64));
    let mut service = obs_opts.serve(&live, None)?;
    let mut sim = DesSim::new(m, n, &platform)
        .config(config)
        .observer(obs.clone())
        .live(Arc::clone(&live))
        .faults(faults);
    if let Some(q) = identity {
        sim = sim.identity(q);
    }
    for d in drifts {
        sim = sim.drift(d);
    }
    if let Some(policy) = recovery {
        sim = sim.recover(policy);
    }
    let run = sim.run();
    if obs_opts.progress {
        eprintln!("{}", render_progress_line(&live.snapshot(), None));
    }
    for loss in &run.losses {
        println!(
            "device failure: gpu{} at block-row {} (t = {})",
            loss.device, loss.block_row, loss.at
        );
    }
    if let Some(e) = &run.aborted {
        if let Some(svc) = service.as_mut() {
            svc.finish(live_registry(&live.snapshot()), false, "aborted");
        }
        return Err(e.to_string());
    }
    let registry = run.report.metrics_with_spans(&obs.spans());
    print!("{}", run.report);
    if obs_opts.metrics {
        obs_opts.print_metrics(&registry);
    }
    if let Some(svc) = service.as_mut() {
        svc.finish(registry, true, "complete");
    }
    obs_opts.export(&obs, &platform)?;
    match &run.memory {
        Ok(plans) => {
            for (d, plan) in run.report.devices.iter().zip(plans) {
                println!(
                    "  gpu{} memory: {:.1} MiB required",
                    d.device,
                    plan.total() as f64 / (1024.0 * 1024.0)
                );
            }
        }
        Err(e) => println!("warning: {e}"),
    }
    if gantt {
        print!(
            "\n{}",
            render_gantt(
                run.schedule.spans(),
                &run.schedule.resource_list(),
                run.schedule.makespan(),
                100,
            )
        );
    }
    Ok(())
}

fn cmd_tune(mut args: ArgStream) -> Result<(), String> {
    let platform = cli_policy::parse_platform(&mut args)?;
    let cp = cli_policy::parse(&mut args)?;
    cp.reject_faults("tune")?;
    let config = cli_policy::parse_config(&mut args, cp.policy)?;
    let m: usize = args.flag_value("--m")?.ok_or("--m is required")?;
    let n: usize = args.flag_value("--n")?.ok_or("--n is required")?;
    args.finish()?;

    let tuned = autotune(m, n, &platform, &config);
    println!("{:>8} {:>9} {:>9}", "block_h", "capacity", "GCUPS");
    for c in &tuned.candidates {
        println!("{:>8} {:>9} {:>9.2}", c.block_h, c.buffer_capacity, c.gcups);
    }
    println!(
        "\nbest: block_h = {}, capacity = {} -> {:.2} GCUPS on {}",
        tuned.config.block_h, tuned.config.buffer_capacity, tuned.gcups, platform.name
    );
    Ok(())
}

fn cmd_screen(mut args: ArgStream) -> Result<(), String> {
    use megasw::seq::kmer::{dotplot, estimate_band, jaccard};

    let k: usize = args.flag_value("--k")?.unwrap_or(16);
    if !(1..=32).contains(&k) {
        return Err("--k must be within 1..=32".into());
    }
    let plot = args.take_flag("--plot");
    let path_a = args.next_positional().ok_or("missing first FASTA path")?;
    let path_b = args.next_positional().ok_or("missing second FASTA path")?;
    args.finish()?;

    let a = load_fasta(&path_a)?;
    let b = load_fasta(&path_b)?;
    let j = jaccard(&a.seq, &b.seq, k);
    println!(
        "{}-mer Jaccard similarity: {:.4}  ({})",
        k,
        j,
        if j > 0.2 {
            "strong homology — full comparison worthwhile"
        } else if j > 0.02 {
            "weak homology — expect short local alignments"
        } else {
            "no detectable homology"
        }
    );
    match estimate_band(&a.seq, &b.seq, k, 0.9, 64) {
        Some((lo, hi)) => println!(
            "estimated alignment band: diagonals {lo}..{hi} (width {})",
            hi - lo + 1
        ),
        None => println!("no shared {k}-mers: no band to estimate"),
    }
    if plot {
        println!("\ndotplot (rows = {}, cols = {}):", a.id(), b.id());
        print!("{}", dotplot(&a.seq, &b.seq, k, 72, 24));
    }
    Ok(())
}

/// `serve`: the resident alignment service. Owns the platform for the
/// process lifetime, drains the prioritized job queue, and serves the
/// whole control surface over the std-only HTTP listener: `POST /jobs`,
/// `GET /jobs`, `GET /jobs/ID`, `GET /jobs/ID/events` (NDJSON progress),
/// `DELETE /jobs/ID` (cooperative cancellation), plus the built-in
/// `/metrics`, `/health` and `/flight`. Runs until killed, printing each
/// job as its execution finishes.
fn cmd_serve(mut args: ArgStream) -> Result<(), String> {
    let platform = cli_policy::parse_platform(&mut args)?;
    let cp = cli_policy::parse(&mut args)?;
    if !cp.faults.is_empty() {
        return Err("serve takes no --fault; inject faults per job via `megasw submit`".into());
    }
    let config = cli_policy::parse_config(&mut args, cp.policy)?;
    let addr = args.flag_str("--addr").ok_or("--addr is required")?;
    let events_ms: u64 = args.flag_value("--events-interval-ms")?.unwrap_or(50);
    args.finish()?;
    if events_ms == 0 {
        return Err("--events-interval-ms must be at least 1".into());
    }

    let mut svc_cfg = ServiceConfig::new(config);
    svc_cfg.events_interval = Duration::from_millis(events_ms);
    if let Some(policy) = cp.recovery {
        svc_cfg = svc_cfg.with_recovery(policy);
    }
    let platform_name = platform.name.clone();
    let service = AlignService::start(platform, svc_cfg, MetricsHub::new());
    let server = MetricsServer::bind_routed(&addr, service.hub(), Some(service.handler()))
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "serving jobs on http://{}/ ({}; POST /jobs, GET /jobs[/ID[/events]], DELETE /jobs/ID, /metrics, /health, /flight)",
        server.local_addr(),
        platform_name
    );

    // Print each job as its execution finishes, in completion order.
    let mut printed = 0usize;
    loop {
        let done = service.completed_order();
        for &id in &done[printed..] {
            if let Some(s) = service.status(id) {
                println!(
                    "job {:>4}  {:<24} {:<9} {}",
                    s.id,
                    s.name,
                    s.state.name(),
                    match (&s.report, &s.error) {
                        (Some(r), _) => format!(
                            "best {}  {:.1} ms",
                            r.best_score(),
                            s.latency.unwrap_or_default().as_secs_f64() * 1e3
                        ),
                        (None, Some(e)) => e.clone(),
                        (None, None) => String::new(),
                    }
                );
            }
        }
        printed = done.len();
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// `submit`: the HTTP client for a running `megasw serve`. Builds the
/// `POST /jobs` JSON body (sequences ride along as FASTA text or raw
/// bases), forwards exactly the policy flags that were given — omitted
/// knobs stay on the server's defaults — then polls `GET /jobs/ID` until
/// the job is terminal.
fn cmd_submit(mut args: ArgStream) -> Result<(), String> {
    use megasw::obs::json::{self, escape, Value};

    let addr = args.flag_str("--addr").ok_or("--addr is required")?;
    if let Some(id) = args.flag_value::<u64>("--cancel")? {
        args.finish()?;
        let (head, body) = http_delete(&addr, &format!("/jobs/{id}"))
            .map_err(|e| format!("cannot reach {addr}: {e}"))?;
        if !head.starts_with("HTTP/1.1 200") {
            return Err(format!("cancel failed: {}", body.trim()));
        }
        let v = json::parse(&body).map_err(|e| format!("bad cancel response: {e}"))?;
        println!(
            "job {id} is now {}",
            v.get("state").and_then(Value::as_str).unwrap_or("?")
        );
        return Ok(());
    }

    let cp = cli_policy::parse(&mut args)?;
    if cp.recovery.is_some() {
        return Err("--recover is a serve-side flag; start the service with it".into());
    }
    let priority: i64 = args.flag_value("--priority")?.unwrap_or(0);
    let batch = args.take_flag("--batch");
    let manifest = args.flag_str("--manifest");
    let threshold = args.flag_value::<u128>("--threshold-cells")?;
    let bins = args.flag_value::<usize>("--bins")?;
    let batch_fault = args.flag_str("--batch-fault");
    let show_scores = args.take_flag("--scores");
    let no_wait = args.take_flag("--no-wait");

    let mut fields: Vec<String> = Vec::new();
    if priority != 0 {
        fields.push(format!("\"priority\": {priority}"));
    }
    if let Some(policy) = cp.raw.policy_json() {
        fields.push(format!("\"policy\": {policy}"));
    }
    if batch || manifest.is_some() {
        if !cp.faults.is_empty() {
            return Err("batch jobs take --batch-fault PAIR@DEV:ROW, not --fault".into());
        }
        let pairs: Vec<(String, String, String)> = if let Some(m) = manifest {
            if batch {
                return Err("--manifest replaces the --batch FASTA paths".into());
            }
            args.finish()?;
            jobs_from_manifest(&m)?
                .into_iter()
                .map(|j| {
                    let a = DnaSeq::from_codes(j.a).expect("manifest codes are valid");
                    let b = DnaSeq::from_codes(j.b).expect("manifest codes are valid");
                    (j.id, a.to_ascii_string(), b.to_ascii_string())
                })
                .collect()
        } else {
            let pa = args
                .next_positional()
                .ok_or("submit --batch needs two many-record FASTA paths")?;
            let pb = args.next_positional().ok_or("missing second FASTA path")?;
            args.finish()?;
            jobs_from_fasta_pair(&pa, &pb)?
                .into_iter()
                .map(|j| {
                    let a = DnaSeq::from_codes(j.a).expect("FASTA codes are valid");
                    let b = DnaSeq::from_codes(j.b).expect("FASTA codes are valid");
                    (j.id, a.to_ascii_string(), b.to_ascii_string())
                })
                .collect()
        };
        if pairs.is_empty() {
            return Err("batch has no pairs".into());
        }
        let rendered: Vec<String> = pairs
            .iter()
            .map(|(id, a, b)| {
                format!(
                    "{{\"id\": \"{}\", \"a\": \"{}\", \"b\": \"{}\"}}",
                    escape(id),
                    escape(a),
                    escape(b)
                )
            })
            .collect();
        fields.push(format!("\"pairs\": [{}]", rendered.join(", ")));
        if let Some(t) = threshold {
            fields.push(format!("\"threshold_cells\": {t}"));
        }
        if let Some(b) = bins {
            fields.push(format!("\"bins\": {b}"));
        }
        if let Some(spec) = batch_fault {
            let rendered: Vec<String> = spec
                .split(',')
                .map(|f| {
                    f.parse::<BatchFault>()?; // validate before shipping
                    Ok(format!("\"{}\"", escape(f)))
                })
                .collect::<Result<_, String>>()?;
            fields.push(format!("\"faults\": [{}]", rendered.join(", ")));
        }
    } else {
        if threshold.is_some() || bins.is_some() || batch_fault.is_some() {
            return Err(
                "--threshold-cells / --bins / --batch-fault need --batch or --manifest".into(),
            );
        }
        let pa = args.next_positional().ok_or("missing first FASTA path")?;
        let pb = args.next_positional().ok_or("missing second FASTA path")?;
        args.finish()?;
        let a_text = std::fs::read_to_string(&pa).map_err(|e| format!("cannot read {pa}: {e}"))?;
        let b_text = std::fs::read_to_string(&pb).map_err(|e| format!("cannot read {pb}: {e}"))?;
        fields.push(format!("\"id\": \"{}-vs-{}\"", escape(&pa), escape(&pb)));
        fields.push(format!("\"a\": \"{}\"", escape(&a_text)));
        fields.push(format!("\"b\": \"{}\"", escape(&b_text)));
        if let Some(spec) = &cp.raw.fault {
            fields.push(format!("\"fault\": \"{}\"", escape(spec)));
        }
    }

    let body = format!("{{{}}}", fields.join(", "));
    let (head, resp) =
        http_post(&addr, "/jobs", &body).map_err(|e| format!("cannot reach {addr}: {e}"))?;
    if !head.starts_with("HTTP/1.1 202") {
        return Err(format!("submit rejected: {}", resp.trim()));
    }
    let v = json::parse(&resp).map_err(|e| format!("bad submit response: {e}"))?;
    let id = v
        .get("job")
        .and_then(Value::as_f64)
        .ok_or("submit response carries no job id")? as u64;
    println!("job {id} queued on {addr}");
    if no_wait {
        return Ok(());
    }

    // Poll to a terminal state.
    loop {
        std::thread::sleep(Duration::from_millis(200));
        let (_, body) = http_get(&addr, &format!("/jobs/{id}"))
            .map_err(|e| format!("lost {addr} while polling: {e}"))?;
        let v = json::parse(&body).map_err(|e| format!("bad status response: {e}"))?;
        let state = v.get("state").and_then(Value::as_str).unwrap_or("?");
        match state {
            "queued" | "running" => continue,
            "done" => {
                let report = v.get("report").ok_or("done job carries no report")?;
                println!(
                    "job {id} done: best {}  {:.1} ms  {:.2} GCUPS",
                    report
                        .get("best_score")
                        .and_then(Value::as_f64)
                        .unwrap_or(0.0),
                    v.get("latency_ms").and_then(Value::as_f64).unwrap_or(0.0),
                    report.get("gcups").and_then(Value::as_f64).unwrap_or(0.0),
                );
                if show_scores {
                    let outcomes = report
                        .get("outcomes")
                        .and_then(Value::as_array)
                        .ok_or("report carries no outcomes")?;
                    for o in outcomes {
                        println!(
                            "  pair {:>5}  {:<24} score {:>9}",
                            o.get("pair").and_then(Value::as_f64).unwrap_or(-1.0),
                            o.get("id").and_then(Value::as_str).unwrap_or("?"),
                            o.get("score").and_then(Value::as_f64).unwrap_or(0.0),
                        );
                    }
                }
                return Ok(());
            }
            "cancelled" => {
                println!("job {id} cancelled");
                return Ok(());
            }
            other => {
                return Err(format!(
                    "job {id} {other}: {}",
                    v.get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("no detail")
                ));
            }
        }
    }
}

/// `serve-metrics`: a long-lived observability endpoint. Generates a fresh
/// synthetic pair each iteration, runs the threaded pipeline with live
/// telemetry and a flight recorder attached, and republishes the registry —
/// live counters during each run, the full post-run registry between runs —
/// while the std-only HTTP listener serves `/metrics`, `/health` and
/// `/flight`. Loops forever unless `--runs` bounds it.
fn cmd_serve_metrics(mut args: ArgStream) -> Result<(), String> {
    let platform = cli_policy::parse_platform(&mut args)?;
    let cp = cli_policy::parse(&mut args)?;
    cp.reject_faults("serve-metrics")?;
    let config = cli_policy::parse_config(&mut args, cp.policy)?;
    let addr = args
        .flag_str("--metrics-addr")
        .ok_or("--metrics-addr is required")?;
    let length: usize = args.flag_value("--length")?.unwrap_or(100_000);
    let seed: u64 = args.flag_value("--seed")?.unwrap_or(42);
    let runs: Option<u64> = args.flag_value("--runs")?;
    args.finish()?;
    if length == 0 {
        return Err("--length must be at least 1".into());
    }

    let hub = MetricsHub::new();
    let flight = FlightRecorder::new(platform.len(), megasw::obs::flight::DEFAULT_CAPACITY);
    hub.attach_flight(Arc::clone(&flight));
    hub.set_health(true, "idle");
    let server = MetricsServer::bind(&addr, Arc::clone(&hub))
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "serving /metrics /health /flight on http://{}/ ({} on {})",
        server.local_addr(),
        match runs {
            Some(n) => format!("{n} runs"),
            None => "looping until killed".into(),
        },
        platform.name
    );

    let mut iteration = 0u64;
    loop {
        iteration += 1;
        let a =
            ChromosomeGenerator::new(GenerateConfig::sized(length, seed ^ iteration)).generate();
        let (b, _) = DivergenceModel::test_scale(seed.wrapping_add(iteration)).apply(&a);
        let live = LiveTelemetry::new(
            platform.len(),
            (a.len() as u64).saturating_mul(b.len() as u64),
        );
        hub.set_health(true, "running");
        let publisher = {
            let hub = Arc::clone(&hub);
            ProgressSampler::spawn(
                Arc::clone(&live),
                Duration::from_millis(250),
                move |cur, _prev| hub.publish(live_registry(cur)),
            )
        };
        let result = PipelineRun::new(a.codes(), b.codes(), &platform)
            .config(config.clone())
            .live(Arc::clone(&live))
            .flight(Arc::clone(&flight))
            .run();
        publisher.stop();
        let report = result.map_err(|e| e.to_string())?;
        let mut registry = report.metrics();
        registry.describe("serve.iterations", "Comparisons completed by serve-metrics");
        registry.incr("serve.iterations", iteration);
        hub.publish(registry);
        hub.set_health(true, "idle");
        println!(
            "run {iteration}: best {} at ({}, {}) in {:.0?}",
            report.best.score,
            report.best.i,
            report.best.j,
            report.wall_time.unwrap_or_default()
        );
        if Some(iteration) == runs {
            break;
        }
    }
    server.shutdown();
    Ok(())
}

// ---------------------------------------------------------------------------
// Shared parsing helpers
// ---------------------------------------------------------------------------

/// How `--metrics` renders the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Text,
    Prom,
    Json,
}

impl std::str::FromStr for MetricsFormat {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "text" => Ok(MetricsFormat::Text),
            "prom" => Ok(MetricsFormat::Prom),
            "json" => Ok(MetricsFormat::Json),
            other => Err(format!(
                "unknown metrics format {other:?} (expected text, prom, or json)"
            )),
        }
    }
}

/// Observability choices shared by `compare`, `align` and `simulate`.
#[derive(Debug)]
struct ObsOptions {
    level: ObsLevel,
    trace_out: Option<String>,
    metrics: bool,
    metrics_format: MetricsFormat,
    progress: bool,
    progress_interval: Duration,
    metrics_addr: Option<String>,
    flight_dump: Option<String>,
}

impl ObsOptions {
    fn recorder(&self) -> Recorder {
        Recorder::new(self.level)
    }

    /// Build a flight recorder when anything will read it: either
    /// `--flight-dump` wants a post-run JSONL, or `--metrics-addr` serves
    /// the live `/flight` endpoint.
    fn flight(&self, lanes: usize) -> Option<Arc<FlightRecorder>> {
        (self.flight_dump.is_some() || self.metrics_addr.is_some())
            .then(|| FlightRecorder::new(lanes, megasw::obs::flight::DEFAULT_CAPACITY))
    }

    /// Reject the endpoint/flight flags on subcommands that cannot honour
    /// them (align's three-stage driver owns its own pipeline runs).
    fn reject_serving(&self, subcommand: &str) -> Result<(), String> {
        if self.metrics_addr.is_some() || self.flight_dump.is_some() {
            return Err(format!(
                "{subcommand} does not support --metrics-addr / --flight-dump"
            ));
        }
        Ok(())
    }

    /// Bind the `--metrics-addr` HTTP listener and start republishing the
    /// live counters into its hub. Returns `None` when the flag is absent.
    fn serve(
        &self,
        live: &Arc<LiveTelemetry>,
        flight: Option<&Arc<FlightRecorder>>,
    ) -> Result<Option<MetricsService>, String> {
        let Some(addr) = &self.metrics_addr else {
            return Ok(None);
        };
        let hub = MetricsHub::new();
        if let Some(fr) = flight {
            hub.attach_flight(Arc::clone(fr));
        }
        hub.set_health(true, "running");
        let server = MetricsServer::bind(addr, Arc::clone(&hub))
            .map_err(|e| format!("cannot bind {addr}: {e}"))?;
        println!(
            "serving /metrics /health /flight on http://{}/",
            server.local_addr()
        );
        let publisher = {
            let hub = Arc::clone(&hub);
            ProgressSampler::spawn(
                Arc::clone(live),
                self.progress_interval.min(Duration::from_millis(250)),
                move |cur, _prev| hub.publish(live_registry(cur)),
            )
        };
        Ok(Some(MetricsService {
            hub,
            _server: server,
            publisher: Some(publisher),
        }))
    }

    /// Write the recorded spans as a Chrome trace, if requested.
    fn export(&self, obs: &Recorder, platform: &Platform) -> Result<(), String> {
        let Some(path) = &self.trace_out else {
            return Ok(());
        };
        let names: Vec<String> = platform.devices.iter().map(|d| d.name.clone()).collect();
        std::fs::write(path, chrome_trace(&obs.spans(), &names))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "wrote {} spans to {path} (open in chrome://tracing or ui.perfetto.dev)",
            obs.len()
        );
        Ok(())
    }

    /// Render the registry in the chosen `--metrics-format`.
    fn print_metrics(&self, metrics: &MetricsRegistry) {
        match self.metrics_format {
            MetricsFormat::Text => print!("{metrics}"),
            MetricsFormat::Prom => print!("{}", prometheus(metrics)),
            MetricsFormat::Json => print!("{}", metrics_json(metrics)),
        }
    }

    /// Start the `--progress` sampler on `live`, writing the progress line
    /// to stderr. Returns `None` when `--progress` was not given; call
    /// [`finish_progress`] on the returned sampler after the run.
    fn spawn_progress(&self, live: &Arc<LiveTelemetry>) -> Option<ProgressSampler> {
        if !self.progress {
            return None;
        }
        Some(ProgressSampler::spawn(
            Arc::clone(live),
            self.progress_interval,
            |cur, prev| {
                // \r + erase-to-EOL keeps a single in-place TTY line.
                eprint!("\r\x1b[K{}", render_progress_line(cur, prev));
                let _ = std::io::stderr().flush();
            },
        ))
    }
}

/// Stop a `--progress` sampler (its shutdown sample prints the final 100%
/// line) and move stderr off the in-place line.
fn finish_progress(sampler: Option<ProgressSampler>) {
    if let Some(s) = sampler {
        s.stop();
        eprintln!();
    }
}

/// A live `--metrics-addr` endpoint for one run: the hub the handlers read
/// from, the HTTP listener, and a sampler that republishes the registry
/// from the live counters every few hundred milliseconds.
struct MetricsService {
    hub: Arc<MetricsHub>,
    _server: MetricsServer,
    publisher: Option<ProgressSampler>,
}

impl MetricsService {
    /// Swap in the final post-run registry and flip `/health` to `state`.
    /// The listener keeps serving until the service value is dropped, so a
    /// scraper arriving between run end and process exit still sees the
    /// complete picture.
    fn finish(&mut self, registry: MetricsRegistry, healthy: bool, state: &str) {
        if let Some(p) = self.publisher.take() {
            p.stop();
        }
        self.hub.publish(registry);
        self.hub.set_health(healthy, state);
    }
}

/// Render the in-flight counters as a registry for the `/metrics` endpoint:
/// overall progress plus the per-device phase clocks, in the same
/// `attr.d{N}` namespace the final report uses.
fn live_registry(s: &LiveSnapshot) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    m.describe("live.cells_done", "DP cells computed so far");
    m.describe("live.now_ns", "Run clock at the sample instant");
    m.describe("live.recoveries", "Device recoveries observed so far");
    m.incr("live.cells_done", s.cells_done());
    m.incr("live.now_ns", s.now_ns);
    m.incr("live.recoveries", s.recoveries);
    m.observe("live.fraction_done", s.fraction_done());
    m.observe("live.gcups_cumulative", s.gcups_cumulative());
    for (i, d) in s.devices.iter().enumerate() {
        m.incr(&format!("live.d{i}.rows_done"), d.rows_done);
        m.incr(&format!("live.d{i}.busy_ns"), d.busy_ns);
        m.incr(&format!("attr.d{i}.wait_input_ns"), d.wait_input_ns);
        m.incr(&format!("attr.d{i}.wait_output_ns"), d.wait_output_ns);
        m.incr(&format!("attr.d{i}.checkpoint_ns"), d.checkpoint_ns);
        m.incr(&format!("attr.d{i}.prune_skip_ns"), d.prune_skip_ns);
    }
    m
}

fn parse_obs(args: &mut ArgStream) -> Result<ObsOptions, String> {
    let trace_out = args.flag_str("--trace-out");
    let metrics = args.take_flag("--metrics");
    let metrics_addr = args.flag_str("--metrics-addr");
    let flight_dump = args.flag_str("--flight-dump");
    if let Some(addr) = &metrics_addr {
        if !addr.contains(':') {
            return Err(format!("--metrics-addr needs HOST:PORT, got {addr:?}"));
        }
    }
    let progress = args.take_flag("--progress");
    let interval_ms = args.flag_value::<u64>("--progress-interval-ms")?;
    let metrics_format = args.flag_str("--metrics-format");
    let explicit_level = args.flag_str("--obs-level");
    let level = match &explicit_level {
        Some(s) => s.parse::<ObsLevel>()?,
        None if trace_out.is_some() => ObsLevel::Full,
        None => ObsLevel::Off,
    };
    if trace_out.is_some() && level == ObsLevel::Off {
        return Err("--trace-out needs --obs-level kernels or full".into());
    }
    // --progress does not need the recorder (the live counters are
    // independent), but combining it with an *explicit* request to observe
    // nothing is a contradiction worth rejecting up front.
    if progress && explicit_level.as_deref() == Some("off") {
        return Err("--progress conflicts with --obs-level off".into());
    }
    // The progress line goes to stderr; a trace streamed to stdout would
    // interleave with it when both are piped through the same terminal.
    if progress {
        if let Some(t) = &trace_out {
            if t == "-" || t == "/dev/stdout" {
                return Err("--progress cannot be combined with --trace-out to stdout".into());
            }
        }
    }
    if metrics_format.is_some() && !metrics {
        return Err("--metrics-format requires --metrics".into());
    }
    if interval_ms.is_some() && !progress {
        return Err("--progress-interval-ms requires --progress".into());
    }
    if interval_ms == Some(0) {
        return Err("--progress-interval-ms must be at least 1".into());
    }
    let metrics_format = match metrics_format {
        Some(s) => s.parse::<MetricsFormat>()?,
        None => MetricsFormat::Text,
    };
    Ok(ObsOptions {
        level,
        trace_out,
        metrics,
        metrics_format,
        progress,
        progress_interval: Duration::from_millis(interval_ms.unwrap_or(500)),
        metrics_addr,
        flight_dump,
    })
}

/// The single parsing surface for every flag that shapes a run: the
/// platform (`--env1`/`--env2`/`--gpus`), the geometry
/// (`--block`/`--capacity`), everything that lands in a [`KernelPolicy`]
/// — `--kernel`, `--prune`, `--equal`, `--checkpoint-rows`,
/// `--rebalance` — plus the fault schedule and recovery budget that ride
/// along with it (`--fault`, `--recover`, `--max-device-failures`).
/// `compare`, `batch`, `align`, `simulate`, `tune`, `serve` and `submit`
/// all parse through here; no subcommand re-implements a flag.
mod cli_policy {
    use super::ArgStream;
    use megasw::obs::json::escape;
    use megasw::prelude::*;

    /// The policy flags exactly as the user gave them. `megasw submit`
    /// renders these as the `policy` object of `POST /jobs` — forwarding
    /// only what was explicit, so the serve-side defaults keep governing
    /// every omitted knob.
    #[derive(Debug, Default)]
    pub struct RawPolicy {
        pub kernel: Option<String>,
        pub prune: Option<String>,
        pub rebalance: Option<String>,
        pub checkpoint_rows: Option<usize>,
        pub equal: bool,
        pub fault: Option<String>,
    }

    impl RawPolicy {
        /// Render the explicitly-given policy flags as the JSON `policy`
        /// object; `None` when no policy flag was given.
        pub fn policy_json(&self) -> Option<String> {
            let mut fields: Vec<String> = Vec::new();
            if let Some(k) = &self.kernel {
                fields.push(format!("\"kernel\": \"{}\"", escape(k)));
            }
            if let Some(p) = &self.prune {
                fields.push(format!("\"prune\": \"{}\"", escape(p)));
            }
            if let Some(r) = &self.rebalance {
                fields.push(format!("\"rebalance\": \"{}\"", escape(r)));
            }
            if let Some(rows) = self.checkpoint_rows {
                fields.push(format!("\"checkpoint_rows\": {rows}"));
            }
            if self.equal {
                fields.push("\"equal\": true".into());
            }
            (!fields.is_empty()).then(|| format!("{{{}}}", fields.join(", ")))
        }
    }

    /// Everything the policy flags decide for a run.
    #[derive(Debug)]
    pub struct CliPolicy {
        pub policy: KernelPolicy,
        pub faults: FaultSchedule,
        pub recovery: Option<RecoveryPolicy>,
        pub raw: RawPolicy,
    }

    impl CliPolicy {
        /// Reject the fault-tolerance flags on subcommands that cannot
        /// inject faults (align runs the three-stage retrieval, tune only
        /// sweeps the simulator).
        pub fn reject_faults(&self, subcommand: &str) -> Result<(), String> {
            if !self.faults.is_empty() || self.recovery.is_some() {
                return Err(format!("{subcommand} does not support --fault / --recover"));
            }
            Ok(())
        }
    }

    pub fn parse(args: &mut ArgStream) -> Result<CliPolicy, String> {
        let mut raw = RawPolicy {
            kernel: args.flag_str("--kernel"),
            prune: args.flag_str("--prune"),
            rebalance: args.flag_str("--rebalance"),
            checkpoint_rows: args.flag_value::<usize>("--checkpoint-rows")?,
            equal: args.take_flag("--equal"),
            fault: args.flag_str("--fault"),
        };
        let mut policy = KernelPolicy::default();
        if let Some(spec) = &raw.kernel {
            policy = policy.with_dispatch(KernelDispatch::parse(spec)?);
        }
        if let Some(spec) = &raw.prune {
            policy = policy.with_pruning(PruneMode::parse(spec)?);
        }
        if raw.equal {
            policy = policy.with_partition(PartitionPolicy::Equal);
        }
        if let Some(rows) = raw.checkpoint_rows {
            if rows == 0 {
                return Err("--checkpoint-rows must be at least 1".into());
            }
            policy = policy.with_checkpoint(CheckpointCadence::EveryRows(rows));
        }
        if let Some(spec) = &raw.rebalance {
            policy = policy.with_rebalance(RebalanceMode::parse(spec)?);
        }
        let faults = match &raw.fault {
            Some(spec) => spec.parse::<FaultSchedule>()?,
            None => FaultSchedule::default(),
        };
        if faults.is_empty() {
            raw.fault = None; // an empty spec forwards nothing
        }
        let recover = args.take_flag("--recover");
        let max_failures = args.flag_value::<usize>("--max-device-failures")?;
        if !recover && max_failures.is_some() {
            return Err("--max-device-failures requires --recover".into());
        }
        let recovery = recover.then(|| RecoveryPolicy {
            max_device_failures: max_failures
                .unwrap_or(RecoveryPolicy::default().max_device_failures),
        });
        Ok(CliPolicy {
            policy,
            faults,
            recovery,
            raw,
        })
    }

    pub fn parse_platform(args: &mut ArgStream) -> Result<Platform, String> {
        let env1 = args.take_flag("--env1");
        let env2 = args.take_flag("--env2");
        if env1 && env2 {
            return Err("--env1 and --env2 are mutually exclusive".into());
        }
        let mut platform = if env1 {
            Platform::env1()
        } else {
            Platform::env2()
        };
        if let Some(gpus) = args.flag_value::<usize>("--gpus")? {
            if gpus == 0 {
                return Err("--gpus must be at least 1".into());
            }
            platform = platform.take(gpus);
        }
        Ok(platform)
    }

    pub fn parse_config(args: &mut ArgStream, policy: KernelPolicy) -> Result<RunConfig, String> {
        let mut config = RunConfig::paper_default().with_policy(policy);
        if let Some(block) = args.flag_value::<usize>("--block")? {
            config = config.with_block(block);
        }
        if let Some(cap) = args.flag_value::<usize>("--capacity")? {
            config = config.with_buffer_capacity(cap);
        }
        config.validate()?;
        Ok(config)
    }
}

/// `--drift` spec: comma-separated `DEV:ROW:FACTOR` entries. From block-row
/// ROW onward, device DEV's clock is multiplied by FACTOR (0.5 = the board
/// halves its clock, e.g. thermal throttling).
fn parse_drifts(spec: &str, devices: usize) -> Result<Vec<ClockDrift>, String> {
    spec.split(',')
        .map(|entry| {
            let parts: Vec<&str> = entry.split(':').collect();
            let [dev, row, factor] = parts.as_slice() else {
                return Err(format!(
                    "bad drift entry {entry:?} (expected DEV:ROW:FACTOR)"
                ));
            };
            let device: usize = dev
                .parse()
                .map_err(|_| format!("bad drift device {dev:?}"))?;
            if device >= devices {
                return Err(format!(
                    "drift device {device} out of range (platform has {devices})"
                ));
            }
            let after_row: usize = row.parse().map_err(|_| format!("bad drift row {row:?}"))?;
            let factor: f64 = factor
                .parse()
                .map_err(|_| format!("bad drift factor {factor:?}"))?;
            if !factor.is_finite() || factor <= 0.0 {
                return Err(format!("drift factor must be positive, got {factor}"));
            }
            Ok(ClockDrift {
                device,
                after_row,
                factor,
            })
        })
        .collect()
}

fn parse_divergence(spec: &str, seed: u64, len: usize) -> Result<DivergenceModel, String> {
    if spec == "human-chimp" {
        Ok(DivergenceModel::human_chimp_scaled(seed ^ 0x444, len))
    } else if spec == "none" {
        Ok(DivergenceModel::identity(seed))
    } else if let Some(rate) = spec.strip_prefix("snp:") {
        let rate: f64 = rate
            .parse()
            .map_err(|_| format!("bad SNP rate in {spec:?}"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err("SNP rate must be within [0, 1]".into());
        }
        Ok(DivergenceModel::snp_only(seed ^ 0x555, rate))
    } else {
        Err(format!(
            "unknown divergence {spec:?} (expected human-chimp, none, or snp:RATE)"
        ))
    }
}

fn load_fasta(path: &str) -> Result<FastaRecord, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_single_fasta(file).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn write_one(path: &str, header: &str, seq: &DnaSeq) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    write_fasta(
        file,
        &[FastaRecord {
            header: header.into(),
            seq: seq.clone(),
        }],
        70,
    )
    .map_err(|e| format!("cannot write {path}: {e}"))
}

/// Minimal argument stream: flags may appear anywhere; positionals keep
/// their relative order; every flag must be consumed exactly once.
struct ArgStream {
    args: Vec<String>,
}

impl ArgStream {
    fn new(args: Vec<String>) -> ArgStream {
        ArgStream { args }
    }

    /// Remove and return the first positional (non-`--`) argument.
    fn next_positional(&mut self) -> Option<String> {
        let idx = self.args.iter().position(|a| !a.starts_with("--"))?;
        Some(self.args.remove(idx))
    }

    /// Remove a boolean flag, returning whether it was present.
    fn take_flag(&mut self, name: &str) -> bool {
        if let Some(idx) = self.args.iter().position(|a| a == name) {
            self.args.remove(idx);
            true
        } else {
            false
        }
    }

    /// Remove `--name value`, parsing the value.
    fn flag_value<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, String> {
        let Some(idx) = self.args.iter().position(|a| a == name) else {
            return Ok(None);
        };
        if idx + 1 >= self.args.len() || self.args[idx + 1].starts_with("--") {
            return Err(format!("{name} requires a value"));
        }
        let value = self.args.remove(idx + 1);
        self.args.remove(idx);
        value
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("invalid value {value:?} for {name}"))
    }

    /// Remove `--name value` as a string.
    fn flag_str(&mut self, name: &str) -> Option<String> {
        self.flag_value::<String>(name).ok().flatten()
    }

    /// Error if anything is left unconsumed.
    fn finish(self) -> Result<(), String> {
        if self.args.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognized arguments: {:?}", self.args))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(args: &[&str]) -> ArgStream {
        ArgStream::new(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn positionals_and_flags_interleave() {
        let mut s = stream(&["--env1", "a.fa", "--block", "64", "b.fa"]);
        assert!(s.take_flag("--env1"));
        assert_eq!(s.flag_value::<usize>("--block").unwrap(), Some(64));
        assert_eq!(s.next_positional().as_deref(), Some("a.fa"));
        assert_eq!(s.next_positional().as_deref(), Some("b.fa"));
        assert!(s.finish().is_ok());
    }

    #[test]
    fn missing_value_is_an_error() {
        let mut s = stream(&["--block"]);
        assert!(s.flag_value::<usize>("--block").is_err());
        let mut s = stream(&["--block", "--env1"]);
        assert!(s.flag_value::<usize>("--block").is_err());
    }

    #[test]
    fn bad_value_is_an_error() {
        let mut s = stream(&["--block", "soup"]);
        assert!(s.flag_value::<usize>("--block").is_err());
    }

    #[test]
    fn leftovers_rejected() {
        let s = stream(&["--mystery"]);
        assert!(s.finish().unwrap_err().contains("--mystery"));
    }

    #[test]
    fn policy_flags_parse_schedule_and_recovery() {
        let mut s = stream(&[
            "--fault",
            "1:5,2:9:ring-push",
            "--recover",
            "--checkpoint-rows",
            "4",
        ]);
        let cp = cli_policy::parse(&mut s).unwrap();
        assert_eq!(cp.faults.faults.len(), 2);
        assert_eq!(cp.faults.faults[0].device, 1);
        assert_eq!(cp.faults.faults[0].block_row, 5);
        assert_eq!(cp.faults.faults[0].phase, FaultPhase::Compute);
        assert_eq!(cp.faults.faults[1].phase, FaultPhase::RingPush);
        assert_eq!(cp.policy.checkpoint, CheckpointCadence::EveryRows(4));
        let recovery = cp.recovery.unwrap();
        assert_eq!(
            recovery.max_device_failures,
            RecoveryPolicy::default().max_device_failures
        );
        assert!(s.finish().is_ok());
    }

    #[test]
    fn policy_flags_default_to_empty_schedule_without_recovery() {
        let mut s = stream(&[]);
        let cp = cli_policy::parse(&mut s).unwrap();
        assert!(cp.faults.faults.is_empty());
        assert!(cp.recovery.is_none());
        assert_eq!(cp.policy, KernelPolicy::default());
        assert_eq!(cp.policy.pruning, PruneMode::Off);
    }

    #[test]
    fn kernel_flag_parses_every_dispatch_once() {
        for (spec, want) in [
            ("auto", KernelDispatch::Auto),
            ("scalar", KernelDispatch::ForceScalar),
            ("sse41", KernelDispatch::ForceSse41),
            ("avx2", KernelDispatch::ForceAvx2),
        ] {
            let mut s = stream(&["--kernel", spec]);
            let cp = cli_policy::parse(&mut s).unwrap();
            assert_eq!(cp.policy.dispatch, want);
            assert!(s.finish().is_ok());
        }
        let mut s = stream(&["--kernel", "gpu"]);
        assert!(cli_policy::parse(&mut s).is_err());
        // Default is auto-detection.
        let mut s = stream(&[]);
        let cp = cli_policy::parse(&mut s).unwrap();
        assert_eq!(cp.policy.dispatch, KernelDispatch::Auto);
    }

    #[test]
    fn prune_flag_parses_every_mode_once() {
        for (spec, want) in [
            ("off", PruneMode::Off),
            ("local", PruneMode::Local),
            ("distributed", PruneMode::Distributed),
        ] {
            let mut s = stream(&["--prune", spec]);
            let cp = cli_policy::parse(&mut s).unwrap();
            assert_eq!(cp.policy.pruning, want);
            assert!(s.finish().is_ok());
        }
        let mut s = stream(&["--prune", "sometimes"]);
        assert!(cli_policy::parse(&mut s).is_err());
    }

    #[test]
    fn checkpoint_rows_is_a_policy_knob_and_recovery_keeps_its_budget_flag() {
        // The cadence no longer needs --recover: it is a KernelPolicy knob.
        let mut s = stream(&["--checkpoint-rows", "4"]);
        let cp = cli_policy::parse(&mut s).unwrap();
        assert_eq!(cp.policy.checkpoint, CheckpointCadence::EveryRows(4));
        assert!(cp.recovery.is_none());
        // …but the recovery budget still does.
        let mut s = stream(&["--max-device-failures", "2"]);
        assert!(cli_policy::parse(&mut s).unwrap_err().contains("--recover"));
    }

    #[test]
    fn zero_checkpoint_interval_is_rejected() {
        let mut s = stream(&["--recover", "--checkpoint-rows", "0"]);
        assert!(cli_policy::parse(&mut s)
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn rebalance_flag_parses_and_rejects_nonsense() {
        let mut s = stream(&["--rebalance", "on"]);
        let cp = cli_policy::parse(&mut s).unwrap();
        assert_eq!(cp.policy.rebalance, RebalanceMode::on());
        assert!(s.finish().is_ok());

        let mut s = stream(&["--rebalance", "on:0.1"]);
        let cp = cli_policy::parse(&mut s).unwrap();
        let RebalanceMode::On { threshold, .. } = cp.policy.rebalance else {
            panic!("expected On, got {:?}", cp.policy.rebalance);
        };
        assert!((threshold - 0.1).abs() < 1e-12);

        let mut s = stream(&["--rebalance", "off"]);
        let cp = cli_policy::parse(&mut s).unwrap();
        assert_eq!(cp.policy.rebalance, RebalanceMode::Off);

        let mut s = stream(&["--rebalance", "sometimes"]);
        assert!(cli_policy::parse(&mut s).is_err());
    }

    #[test]
    fn raw_policy_forwards_exactly_the_explicit_flags() {
        // Nothing given — nothing forwarded (the serve-side defaults win).
        let mut s = stream(&[]);
        let cp = cli_policy::parse(&mut s).unwrap();
        assert!(cp.raw.policy_json().is_none());
        assert!(cp.raw.fault.is_none());

        let mut s = stream(&[
            "--kernel",
            "scalar",
            "--prune",
            "local",
            "--checkpoint-rows",
            "4",
            "--equal",
            "--fault",
            "0:2",
        ]);
        let cp = cli_policy::parse(&mut s).unwrap();
        let json = cp.raw.policy_json().unwrap();
        assert!(json.contains("\"kernel\": \"scalar\""), "{json}");
        assert!(json.contains("\"prune\": \"local\""), "{json}");
        assert!(json.contains("\"checkpoint_rows\": 4"), "{json}");
        assert!(json.contains("\"equal\": true"), "{json}");
        assert!(!json.contains("rebalance"), "{json}");
        assert_eq!(cp.raw.fault.as_deref(), Some("0:2"));
        assert!(s.finish().is_ok());

        // A single knob forwards just itself.
        let mut s = stream(&["--rebalance", "on:0.1"]);
        let cp = cli_policy::parse(&mut s).unwrap();
        assert_eq!(
            cp.raw.policy_json().as_deref(),
            Some("{\"rebalance\": \"on:0.1\"}")
        );
    }

    #[test]
    fn drift_spec_parses_lists_and_rejects_nonsense() {
        let ds = parse_drifts("0:100:0.5,2:0:2.0", 3).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(
            ds[0],
            ClockDrift {
                device: 0,
                after_row: 100,
                factor: 0.5
            }
        );
        assert_eq!(ds[1].device, 2);
        assert!(parse_drifts("5:0:0.5", 3).unwrap_err().contains("range"));
        assert!(parse_drifts("0:0", 3).is_err());
        assert!(parse_drifts("0:0:-1.0", 3).is_err());
        assert!(parse_drifts("0:0:0", 3).is_err());
        assert!(parse_drifts("a:b:c", 3).is_err());
    }

    #[test]
    fn malformed_fault_spec_is_an_error() {
        let mut s = stream(&["--fault", "1:5:naptime"]);
        assert!(cli_policy::parse(&mut s).is_err());
        let mut s = stream(&["--fault", "nonsense"]);
        assert!(cli_policy::parse(&mut s).is_err());
    }

    #[test]
    fn fault_flags_rejected_on_subcommands_without_fault_support() {
        let mut s = stream(&["--fault", "0:1"]);
        let cp = cli_policy::parse(&mut s).unwrap();
        let err = cp.reject_faults("align").unwrap_err();
        assert!(err.contains("align"), "{err}");
        let mut s = stream(&["--recover"]);
        let cp = cli_policy::parse(&mut s).unwrap();
        assert!(cp.reject_faults("tune").is_err());
    }

    #[test]
    fn platform_parsing() {
        let mut s = stream(&["--env1", "--gpus", "1"]);
        let p = cli_policy::parse_platform(&mut s).unwrap();
        assert_eq!(p.len(), 1);
        assert!(p.devices[0].name.contains("680"));

        let mut s = stream(&["--env1", "--env2"]);
        assert!(cli_policy::parse_platform(&mut s).is_err());

        let mut s = stream(&["--gpus", "0"]);
        assert!(cli_policy::parse_platform(&mut s).is_err());
    }

    #[test]
    fn config_parsing_validates() {
        let mut s = stream(&["--block", "128", "--capacity", "2", "--equal"]);
        let cp = cli_policy::parse(&mut s).unwrap();
        let c = cli_policy::parse_config(&mut s, cp.policy).unwrap();
        assert_eq!(c.block_h, 128);
        assert_eq!(c.buffer_capacity, 2);
        assert_eq!(c.policy.partition, PartitionPolicy::Equal);

        let mut s = stream(&["--capacity", "0"]);
        assert!(cli_policy::parse_config(&mut s, KernelPolicy::default()).is_err());
    }

    #[test]
    fn divergence_parsing() {
        assert!(parse_divergence("human-chimp", 1, 1_000_000).is_ok());
        assert!(parse_divergence("none", 1, 10).is_ok());
        let snp = parse_divergence("snp:0.05", 1, 10).unwrap();
        assert!((snp.snp_rate - 0.05).abs() < 1e-12);
        assert!(parse_divergence("snp:2.0", 1, 10).is_err());
        assert!(parse_divergence("wat", 1, 10).is_err());
    }

    #[test]
    fn obs_parsing() {
        let mut s = stream(&["--trace-out", "t.json", "--metrics"]);
        let o = parse_obs(&mut s).unwrap();
        assert_eq!(o.level, ObsLevel::Full); // tracing implies a live recorder
        assert!(o.metrics);
        assert_eq!(o.trace_out.as_deref(), Some("t.json"));

        let mut s = stream(&[]);
        let o = parse_obs(&mut s).unwrap();
        assert_eq!(o.level, ObsLevel::Off);
        assert!(!o.metrics);

        let mut s = stream(&["--obs-level", "kernels"]);
        assert_eq!(parse_obs(&mut s).unwrap().level, ObsLevel::Kernels);

        let mut s = stream(&["--obs-level", "verbose"]);
        assert!(parse_obs(&mut s).is_err());

        let mut s = stream(&["--trace-out", "t.json", "--obs-level", "off"]);
        assert!(parse_obs(&mut s).is_err());
    }

    #[test]
    fn progress_parsing_and_conflicts() {
        // Defaults: progress off, 500 ms interval.
        let mut s = stream(&[]);
        let o = parse_obs(&mut s).unwrap();
        assert!(!o.progress);
        assert_eq!(o.progress_interval, Duration::from_millis(500));

        let mut s = stream(&["--progress", "--progress-interval-ms", "100"]);
        let o = parse_obs(&mut s).unwrap();
        assert!(o.progress);
        assert_eq!(o.progress_interval, Duration::from_millis(100));

        // --progress works with the default (implicit off) obs level: the
        // live counters do not need the recorder.
        let mut s = stream(&["--progress"]);
        assert!(parse_obs(&mut s).unwrap().progress);

        // …but an *explicit* --obs-level off contradicts it.
        let mut s = stream(&["--progress", "--obs-level", "off"]);
        let err = parse_obs(&mut s).unwrap_err();
        assert!(err.contains("--obs-level off"), "{err}");

        // A trace streamed to stdout would interleave with the line.
        for sink in ["-", "/dev/stdout"] {
            let mut s = stream(&["--progress", "--trace-out", sink]);
            let err = parse_obs(&mut s).unwrap_err();
            assert!(err.contains("stdout"), "{err}");
        }
        // A trace to a real file is fine.
        let mut s = stream(&["--progress", "--trace-out", "t.json"]);
        assert!(parse_obs(&mut s).is_ok());

        // The interval flag is meaningless without --progress, and zero is
        // rejected.
        let mut s = stream(&["--progress-interval-ms", "100"]);
        assert!(parse_obs(&mut s).is_err());
        let mut s = stream(&["--progress", "--progress-interval-ms", "0"]);
        assert!(parse_obs(&mut s).is_err());
    }

    #[test]
    fn metrics_format_parsing() {
        let mut s = stream(&["--metrics"]);
        assert_eq!(
            parse_obs(&mut s).unwrap().metrics_format,
            MetricsFormat::Text
        );

        for (spec, want) in [
            ("text", MetricsFormat::Text),
            ("prom", MetricsFormat::Prom),
            ("json", MetricsFormat::Json),
        ] {
            let mut s = stream(&["--metrics", "--metrics-format", spec]);
            assert_eq!(parse_obs(&mut s).unwrap().metrics_format, want);
        }

        let mut s = stream(&["--metrics", "--metrics-format", "xml"]);
        assert!(parse_obs(&mut s).is_err());

        let mut s = stream(&["--metrics-format", "prom"]);
        let err = parse_obs(&mut s).unwrap_err();
        assert!(err.contains("requires --metrics"), "{err}");
    }

    #[test]
    fn metrics_addr_and_flight_dump_parsing() {
        // Defaults: neither endpoint nor flight box.
        let mut s = stream(&[]);
        let o = parse_obs(&mut s).unwrap();
        assert!(o.metrics_addr.is_none());
        assert!(o.flight_dump.is_none());
        assert!(o.flight(3).is_none());
        assert!(o.reject_serving("align").is_ok());

        let mut s = stream(&["--metrics-addr", "127.0.0.1:0"]);
        let o = parse_obs(&mut s).unwrap();
        assert_eq!(o.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        // The endpoint serves /flight, so a recorder is kept even without
        // --flight-dump; one lane per device.
        let fr = o.flight(3).expect("endpoint keeps a flight recorder");
        assert_eq!(fr.num_lanes(), 3);
        assert!(o.reject_serving("align").is_err());

        let mut s = stream(&["--metrics-addr", "localhost"]);
        let err = parse_obs(&mut s).unwrap_err();
        assert!(err.contains("HOST:PORT"), "{err}");

        let mut s = stream(&["--flight-dump", "box.jsonl"]);
        let o = parse_obs(&mut s).unwrap();
        assert_eq!(o.flight_dump.as_deref(), Some("box.jsonl"));
        assert!(o.flight(2).is_some());
        assert!(o.reject_serving("align").is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(vec!["frobnicate".into()]).is_err());
        assert!(run(vec![]).is_ok()); // prints usage
    }
}
