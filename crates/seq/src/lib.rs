//! # megasw-seq — DNA sequences for megabase Smith-Waterman
//!
//! This crate is the *data substrate* of the `megasw` workspace. The PPoPP'14
//! paper compares four pairs of human–chimpanzee homologous chromosomes; those
//! FASTA files are not redistributable, so this crate provides:
//!
//! * [`Nucleotide`] / [`DnaSeq`] — a compact DNA representation whose code
//!   values are consumed directly by the dynamic-programming kernels in
//!   `megasw-sw`;
//! * [`PackedDna`] — a 2-bit packed storage form used for on-"device" residency
//!   accounting and I/O;
//! * [`generate`] — a seeded synthetic chromosome generator with realistic GC
//!   content and repeat structure;
//! * [`mutate`] — an evolutionary divergence channel (SNPs, indels, segmental
//!   events, inversions) that derives a "chimpanzee" homolog from a "human"
//!   ancestor at a configurable divergence (default ≈ human–chimp);
//! * [`pair`] — the catalog of benchmark chromosome pairs mirroring the
//!   paper's Table 1 (at scaled sizes);
//! * [`fasta`] — streaming FASTA reader/writer so real chromosomes can be used
//!   whenever they are available.
//!
//! Everything is deterministic: all generators take explicit seeds and use a
//! portable ChaCha RNG, so every experiment in the workspace is reproducible
//! bit-for-bit.

pub mod alphabet;
pub mod dna;
pub mod fasta;
pub mod generate;
pub mod kmer;
pub mod mutate;
pub mod pair;
pub mod rng;
pub mod stats;

pub use alphabet::Nucleotide;
pub use dna::{DnaSeq, PackedDna};
pub use generate::{ChromosomeGenerator, GenerateConfig};
pub use mutate::{DivergenceModel, DivergenceSummary};
pub use pair::{ChromosomePair, PairCatalog, PairSpec};
