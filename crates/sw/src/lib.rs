//! # megasw-sw — Smith-Waterman dynamic-programming kernels
//!
//! This crate implements every DP kernel the multi-GPU strategy is built
//! from, in pure Rust:
//!
//! * [`scoring`] — the affine-gap scoring scheme (CUDAlign defaults:
//!   match +1, mismatch −3, gap open 3, gap extend 2);
//! * [`reference`] — full-matrix Smith-Waterman with affine gaps (Gotoh
//!   recurrences), quadratic memory: the ground truth everything else is
//!   tested against;
//! * [`gotoh`] — linear-space score-only scan over whole sequences (the
//!   sequential CPU baseline);
//! * [`border`] + [`block`] — the **border-to-border block kernel**: compute
//!   a `bh × bw` tile of the matrix from its incoming top/left borders and
//!   emit its bottom/right borders plus the local best cell. This is the
//!   exact unit of work a simulated GPU executes, and the unit whose right
//!   column is streamed between GPUs in the paper's strategy;
//! * [`grid`] — blocked decomposition of the whole matrix and a sequential
//!   external-diagonal executor (single-device semantics);
//! * [`antidiag`] — anti-diagonal (wavefront) full-matrix scan mirroring the
//!   intra-block parallel shape of the CUDA kernel;
//! * [`prune`] — CUDAlign 2.1-style block pruning: the sequential pruned
//!   executor plus the bound/substitute/corner-restore helpers the
//!   multi-GPU pipeline composes into distributed pruning;
//! * [`traceback`] — optimal local alignment retrieval in linear space
//!   (Myers–Miller divide-and-conquer), the analogue of CUDAlign stages 2–4;
//! * [`kernel`] — the unified [`kernel::Kernel`] trait over every DP entry
//!   point, with runtime CPU-feature dispatch ([`kernel::KernelDispatch`])
//!   across the scalar engine and the private anti-diagonal SIMD engines
//!   (AVX2 / SSE4.1, i16 lanes with overflow rescue).
//!
//! The old free-function entry points (`compute_block`, `gotoh_best`,
//! `banded_best`, …) were deprecated shims over the trait surface and have
//! been removed; call `kernel::scalar()` / `kernel::auto()` /
//! `kernel::select(dispatch)` instead.
//!
//! ## Matrix conventions
//!
//! DP indices are 1-based: `H[i][j]` scores alignments ending at
//! `a[i-1]`/`b[j-1]`, with row 0 and column 0 forming the all-zero local
//! alignment boundary. Sequence `a` spans the **rows** (the "human"
//! chromosome in the paper's datasets) and `b` spans the **columns** (the
//! "chimpanzee" chromosome; columns are what get partitioned across GPUs).

pub mod antidiag;
pub mod banded;
pub mod block;
pub mod border;
pub mod cell;
pub mod gotoh;
pub mod grid;
pub mod kernel;
pub mod prune;
pub mod reference;
pub mod render;
pub mod scoring;
#[cfg(target_arch = "x86_64")]
mod simd;
pub mod traceback;

/// ASCII letter for a base code (`0..=4`); used by renderers.
#[inline]
pub fn ascii_base(code: u8) -> char {
    match code {
        0 => 'A',
        1 => 'C',
        2 => 'G',
        3 => 'T',
        _ => 'N',
    }
}

pub use block::{skip_block, BlockInput, BlockOutput};
pub use border::{ColBorder, RowBorder};
pub use cell::{BestCell, Score, NEG_INF};
pub use kernel::{Kernel, KernelDispatch, KernelId, KernelSelection};
pub use prune::{prune_bound, restore_corner, tile_is_prunable};
pub use scoring::ScoreScheme;
