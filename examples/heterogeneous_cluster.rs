//! Heterogeneous-cluster exploration: assemble platforms out of the device
//! catalog, compare equal vs proportional partitioning, and render the
//! execution timeline as a Gantt chart.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use megasw::gpusim::trace::render_gantt;
use megasw::multigpu::desrun::{run_des, run_des_bulk};
use megasw::prelude::*;

const MBP: usize = 1_000_000;

fn main() {
    let cfg = RunConfig::paper_default();
    let (m, n) = (4 * MBP, 4 * MBP);

    println!("device catalog:");
    for d in catalog::all() {
        println!(
            "  {:<22} {:>2} SMs @ {:>4} MHz  → {:>5.1} GCUPS peak",
            d.name,
            d.sms,
            d.clock_mhz,
            d.peak_gcups()
        );
    }

    // A ladder of increasingly heterogeneous platforms.
    let platforms = vec![
        Platform::single(catalog::gtx_titan()),
        Platform::env1(),
        Platform::env2(),
        Platform::custom("all six boards", catalog::all().into_iter().rev().collect()),
    ];

    println!("\n{m}×{n} matrix, proportional vs equal partitioning:\n");
    println!(
        "{:<32} {:>10} {:>12} {:>12} {:>8}",
        "platform", "peak", "proportional", "equal", "gain"
    );
    for p in &platforms {
        let prop = run_des(m, n, p, &cfg).report.gcups_sim.unwrap();
        let equal = run_des(m, n, p, &cfg.clone().with_partition(PartitionPolicy::Equal))
            .report
            .gcups_sim
            .unwrap();
        println!(
            "{:<32} {:>8.1}G {:>10.2}G {:>10.2}G {:>7.1}%",
            p.name,
            p.aggregate_peak_gcups(),
            prop,
            equal,
            100.0 * (prop / equal - 1.0)
        );
    }

    // Overlap ablation on Env2.
    let p = Platform::env2();
    let fine = run_des(m, n, &p, &cfg).report.gcups_sim.unwrap();
    let bulk = run_des_bulk(m, n, &p, &cfg).report.gcups_sim.unwrap();
    println!(
        "\noverlap ablation on {}: fine-grain {fine:.1} GCUPS vs bulk-synchronous {bulk:.1} GCUPS ({:.1}×)",
        p.name,
        fine / bulk
    );

    // Timeline of a short run (kernels '#', transfers '>').
    let small = run_des(MBP / 4, MBP / 4, &p, &cfg);
    println!(
        "\nexecution timeline of a {}×{} run on {} (makespan {}):\n",
        MBP / 4,
        MBP / 4,
        p.name,
        small.schedule.makespan()
    );
    print!(
        "{}",
        render_gantt(
            small.schedule.spans(),
            &small.schedule.resource_list(),
            small.schedule.makespan(),
            96,
        )
    );
    println!("\nlegend: '#' kernel, '>' border transfer, '.' idle");
}
