//! Quickstart: compare a synthetic megabase-class homologous pair on the
//! paper's heterogeneous 3-GPU environment, with both backends.
//!
//! ```text
//! cargo run --release --example quickstart [length]
//! ```
//!
//! `length` defaults to 200000 bases (~seconds in release mode).

use megasw::prelude::*;

fn main() {
    let length: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    println!("megasw quickstart — {length} bp homologous pair\n");

    // 1. Data: an ancestor chromosome and a diverged homolog.
    let human = ChromosomeGenerator::new(GenerateConfig::sized(length, 42)).generate();
    let (chimp, summary) = DivergenceModel::human_chimp(7).apply(&human);
    println!(
        "generated pair: human {} bp, chimp {} bp ({} SNPs, {} indel events)",
        human.len(),
        chimp.len(),
        summary.substitutions,
        summary.insertions + summary.deletions
    );

    // 2. Platform and configuration.
    let platform = Platform::env2();
    let config = RunConfig::paper_default();
    println!(
        "platform: {} ({:.0} GCUPS aggregate peak)\n",
        platform.name,
        platform.aggregate_peak_gcups()
    );

    // 3. The threaded runtime: real DP, real rings, bit-exact result.
    let report = PipelineRun::new(human.codes(), chimp.codes(), &platform)
        .config(config.clone())
        .run()
        .expect("pipeline run failed");
    println!("threaded pipeline:");
    print!("{report}");

    // 4. The discrete-event simulator: paper-comparable GCUPS.
    let sim = run_des(human.len(), chimp.len(), &platform, &config);
    println!("\nsimulated hardware:");
    print!("{}", sim.report);

    // 5. Cross-check against the sequential reference (scalar engine).
    let reference = kernel::scalar().best(human.codes(), chimp.codes(), &config.scheme);
    assert_eq!(report.best, reference, "pipeline must equal the reference");
    println!("\nverified: pipeline result equals the sequential reference ✓");
}
