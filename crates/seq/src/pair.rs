//! Benchmark chromosome pairs (the paper's Table 1 analogue).
//!
//! The PPoPP'14 evaluation compares **four pairs of human–chimpanzee
//! homologous chromosomes**. Their identities are not recoverable from the
//! abstract, so the catalog below defines four synthetic pairs whose *size
//! ratios and divergence* mimic homologous chromosome pairs. The default
//! catalog is scaled down (1–5 MBP) so the whole evaluation runs on CPU-hosted
//! DP in minutes; [`PairCatalog::paper_scale`] produces the tens-of-MBP
//! variants when you have hours to spare.

use crate::dna::DnaSeq;
use crate::generate::{ChromosomeGenerator, GenerateConfig};
use crate::mutate::{DivergenceModel, DivergenceSummary};

/// Specification of one homologous pair.
#[derive(Debug, Clone)]
pub struct PairSpec {
    /// Short name used in tables ("chrA" …).
    pub name: &'static str,
    /// Length of the "human" copy, in bases.
    pub human_len: usize,
    /// Target length of the "chimp" copy (achieved approximately, via the
    /// divergence channel's indel balance).
    pub chimp_len: usize,
    /// Generation seed.
    pub seed: u64,
}

impl PairSpec {
    /// Matrix cell count (human_len × chimp_len) — the work unit behind
    /// GCUPS figures.
    pub fn cells(&self) -> u128 {
        self.human_len as u128 * self.chimp_len as u128
    }
}

/// A materialized homologous pair.
#[derive(Debug, Clone)]
pub struct ChromosomePair {
    pub spec: PairSpec,
    /// The "human" chromosome (DP matrix rows / query).
    pub human: DnaSeq,
    /// The "chimpanzee" homolog (DP matrix columns / database).
    pub chimp: DnaSeq,
    /// The mutation events that produced `chimp` from the ancestor.
    pub divergence: DivergenceSummary,
}

impl ChromosomePair {
    /// Generate a pair from its spec.
    ///
    /// The "human" copy is the generated ancestor itself; the "chimp" copy is
    /// the ancestor passed through a human–chimp divergence channel and then
    /// trimmed/extended toward `chimp_len` (trim from the end, or append
    /// fresh sequence — telomeric drift).
    pub fn generate(spec: PairSpec) -> ChromosomePair {
        let human =
            ChromosomeGenerator::new(GenerateConfig::sized(spec.human_len, spec.seed)).generate();
        let (mut chimp, divergence) = DivergenceModel::human_chimp_scaled(
            spec.seed.wrapping_mul(0x9E37_79B9),
            spec.human_len,
        )
        .apply(&human);

        // Nudge toward the target chimp length.
        match chimp.len().cmp(&spec.chimp_len) {
            std::cmp::Ordering::Greater => {
                chimp = chimp.slice(0, spec.chimp_len);
            }
            std::cmp::Ordering::Less => {
                let tail_len = spec.chimp_len - chimp.len();
                let tail = ChromosomeGenerator::new(GenerateConfig::sized(
                    tail_len,
                    spec.seed.wrapping_add(0xDEAD_BEEF),
                ))
                .generate();
                chimp.extend_codes(tail.codes());
            }
            std::cmp::Ordering::Equal => {}
        }

        ChromosomePair {
            spec,
            human,
            chimp,
            divergence,
        }
    }

    /// Matrix cell count for this concrete pair.
    pub fn cells(&self) -> u128 {
        self.human.len() as u128 * self.chimp.len() as u128
    }
}

/// The catalog of benchmark pairs.
#[derive(Debug, Clone)]
pub struct PairCatalog {
    pub specs: Vec<PairSpec>,
}

impl PairCatalog {
    /// Scaled-down default catalog: 4 pairs, 1–5 MBP.
    ///
    /// | name | human | chimp |
    /// |------|-------|-------|
    /// | chrA | 1.0 M | 1.0 M |
    /// | chrB | 2.0 M | 2.1 M |
    /// | chrC | 3.0 M | 2.9 M |
    /// | chrD | 5.0 M | 5.2 M |
    pub fn default_scale() -> Self {
        PairCatalog {
            specs: vec![
                PairSpec {
                    name: "chrA",
                    human_len: 1_000_000,
                    chimp_len: 1_000_000,
                    seed: 101,
                },
                PairSpec {
                    name: "chrB",
                    human_len: 2_000_000,
                    chimp_len: 2_100_000,
                    seed: 102,
                },
                PairSpec {
                    name: "chrC",
                    human_len: 3_000_000,
                    chimp_len: 2_900_000,
                    seed: 103,
                },
                PairSpec {
                    name: "chrD",
                    human_len: 5_000_000,
                    chimp_len: 5_200_000,
                    seed: 104,
                },
            ],
        }
    }

    /// Paper-scale catalog (tens of MBP, like chr21/chr22/chrY-class inputs).
    /// Only use with the discrete-event backend or a lot of patience.
    pub fn paper_scale() -> Self {
        PairCatalog {
            specs: vec![
                PairSpec {
                    name: "chr22",
                    human_len: 24_000_000,
                    chimp_len: 24_700_000,
                    seed: 201,
                },
                PairSpec {
                    name: "chr21",
                    human_len: 33_000_000,
                    chimp_len: 32_100_000,
                    seed: 202,
                },
                PairSpec {
                    name: "chrY",
                    human_len: 26_000_000,
                    chimp_len: 25_200_000,
                    seed: 203,
                },
                PairSpec {
                    name: "chr19",
                    human_len: 47_000_000,
                    chimp_len: 49_000_000,
                    seed: 204,
                },
            ],
        }
    }

    /// Tiny catalog for unit/integration tests (tens of KBP).
    pub fn test_scale() -> Self {
        PairCatalog {
            specs: vec![
                PairSpec {
                    name: "tinyA",
                    human_len: 12_000,
                    chimp_len: 12_000,
                    seed: 301,
                },
                PairSpec {
                    name: "tinyB",
                    human_len: 18_000,
                    chimp_len: 20_000,
                    seed: 302,
                },
                PairSpec {
                    name: "tinyC",
                    human_len: 26_000,
                    chimp_len: 24_000,
                    seed: 303,
                },
                PairSpec {
                    name: "tinyD",
                    human_len: 32_000,
                    chimp_len: 32_000,
                    seed: 304,
                },
            ],
        }
    }

    /// Look a spec up by name.
    pub fn get(&self, name: &str) -> Option<&PairSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Generate every pair (expensive at default scale; benches cache these).
    pub fn generate_all(&self) -> Vec<ChromosomePair> {
        self.specs
            .iter()
            .cloned()
            .map(ChromosomePair::generate)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_four_pairs_like_the_paper() {
        assert_eq!(PairCatalog::default_scale().specs.len(), 4);
        assert_eq!(PairCatalog::paper_scale().specs.len(), 4);
        assert_eq!(PairCatalog::test_scale().specs.len(), 4);
    }

    #[test]
    fn lookup_by_name() {
        let cat = PairCatalog::default_scale();
        assert!(cat.get("chrB").is_some());
        assert!(cat.get("nope").is_none());
    }

    #[test]
    fn generated_pair_hits_exact_lengths() {
        let spec = PairSpec {
            name: "t",
            human_len: 30_000,
            chimp_len: 32_000,
            seed: 5,
        };
        let pair = ChromosomePair::generate(spec);
        assert_eq!(pair.human.len(), 30_000);
        assert_eq!(pair.chimp.len(), 32_000);
        assert_eq!(pair.cells(), 30_000u128 * 32_000u128);
    }

    #[test]
    fn generated_pair_hits_exact_lengths_when_trimming() {
        // chimp shorter than human forces the trim path.
        let spec = PairSpec {
            name: "t",
            human_len: 30_000,
            chimp_len: 24_000,
            seed: 6,
        };
        let pair = ChromosomePair::generate(spec);
        assert_eq!(pair.chimp.len(), 24_000);
    }

    #[test]
    fn pair_members_are_highly_similar_but_not_identical() {
        let spec = PairSpec {
            name: "t",
            human_len: 50_000,
            chimp_len: 50_000,
            seed: 8,
        };
        let pair = ChromosomePair::generate(spec);
        assert_ne!(pair.human, pair.chimp);
        assert!(pair.divergence.substitutions > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = PairSpec {
            name: "t",
            human_len: 25_000,
            chimp_len: 26_000,
            seed: 12,
        };
        let a = ChromosomePair::generate(spec.clone());
        let b = ChromosomePair::generate(spec);
        assert_eq!(a.human, b.human);
        assert_eq!(a.chimp, b.chimp);
    }

    #[test]
    fn spec_cells_uses_wide_arithmetic() {
        let spec = PairSpec {
            name: "big",
            human_len: 47_000_000,
            chimp_len: 49_000_000,
            seed: 0,
        };
        assert_eq!(spec.cells(), 47_000_000u128 * 49_000_000u128);
    }
}
