//! Anti-diagonal SIMD wavefront kernels (x86-64: AVX2 and SSE4.1).
//!
//! The scalar block kernel walks the tile row-major; every cell depends on
//! its left neighbour through `E`, so rows cannot be vectorized directly.
//! Cells on one **anti-diagonal** (`i + j = const`) are mutually
//! independent, which is the classic wavefront shape GPU Smith-Waterman
//! kernels exploit. This module runs the same recurrences over striped
//! anti-diagonal state vectors with 16-bit lanes:
//!
//! * state is held per tile row `k` in seven rolling arrays (`H` at
//!   diagonals `d`, `d−1`, `d−2`; `E`/`F` at `d`, `d−1`), so a lane load at
//!   offset `k` reads the neighbour values of cells `(k, d−k)`;
//! * sequence `b` is stored **reversed** so that ascending lane index `k`
//!   maps to the descending column `l = d − k` with a single contiguous
//!   load;
//! * scores are **rebased** against the tile's corner value (`bias =
//!   top.h[0]`): all arithmetic is saturating i16 on `value − bias`, so
//!   tiles whose absolute scores are far beyond `i16::MAX` (megabase
//!   alignments reach millions) still vectorize.
//!
//! **Overflow rescue.** i16 lanes hold a tile only if its dynamic range
//! fits the safe band `±28_000`. A pre-scan bounds every incoming border
//! value and adds a per-cell drift margin (`(bh + bw + 4) · step`, where
//! `step` is the largest per-cell score change the scheme allows); a tile
//! that could leave the band — or, belt and braces, one whose computed `H`
//! values actually do — is re-run through the scalar i32 kernel and counted
//! in [`rescue_count`]. The rescue is invisible to callers: the vector and
//! scalar paths are bit-identical (same borders, same deterministic best
//! cell), which the conformance matrix asserts under every dispatch mode.
//!
//! Out-of-band "minus infinity" lanes (`E`/`F` seeds) are pinned at
//! [`NEG_INF16`]; the pre-scan margin guarantees any real arm of a `max`
//! beats any `NEG_INF16`-derived arm, so saturating decay of the infinity
//! lanes can never surface in a stored value.
//!
//! This module is private: the engines are reachable only through
//! [`crate::kernel::select`], which verifies CPU support at runtime.

use std::arch::x86_64::*;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::block::{compute_block_impl, BlockInput, BlockOutput};
use crate::border::{ColBorder, RowBorder};
use crate::cell::{BestCell, Score, NEG_INF};
use crate::kernel::{Kernel, KernelId};
use crate::scoring::ScoreScheme;

/// Rebased i16 "minus infinity" for E/F lanes. Far enough below the safe
/// band that a real arm always wins a `max` against anything derived from
/// it, far enough above `i16::MIN` that one saturating subtraction cannot
/// wrap.
const NEG_INF16: i16 = -30_000;

/// Safe dynamic range for rebased values, `|value − bias| ≤ BAND`. Leaves
/// `i16::MAX − BAND > 4_000` of headroom so a single saturating add/sub on
/// an in-band value cannot saturate.
const BAND: i64 = 28_000;

static RESCUES: AtomicU64 = AtomicU64::new(0);
static RESCUE_NS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread mirrors of the global rescue counters. A pipeline runs
    /// one worker thread per device, so sampling these from the worker
    /// gives *exact* per-device rescue attribution — the process-global
    /// counters cannot separate concurrent workers (or concurrent tests).
    static TLS_RESCUES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static TLS_RESCUE_NS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Tiles re-run through the scalar i32 kernel by the overflow-rescue
/// protocol, process-wide and monotone.
pub(crate) fn rescue_count() -> u64 {
    RESCUES.load(Ordering::Relaxed)
}

/// Wall-clock nanoseconds spent in those scalar re-runs, process-wide and
/// monotone. Phase-attribution samples this around each tile to bill
/// rescue time separately from ordinary compute.
pub(crate) fn rescue_ns() -> u64 {
    RESCUE_NS.load(Ordering::Relaxed)
}

/// [`rescue_count`], but only the rescues the *calling thread* triggered.
pub(crate) fn rescue_count_thread() -> u64 {
    TLS_RESCUES.with(|c| c.get())
}

/// [`rescue_ns`], but only the nanoseconds the *calling thread* spent.
pub(crate) fn rescue_ns_thread() -> u64 {
    TLS_RESCUE_NS.with(|c| c.get())
}

/// Run the scalar fallback for a tile the vector engine gave up on,
/// charging its duration to the rescue clock.
fn rescue_block<const LOCAL: bool>(input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput {
    RESCUES.fetch_add(1, Ordering::Relaxed);
    TLS_RESCUES.with(|c| c.set(c.get() + 1));
    let t = std::time::Instant::now();
    let out = compute_block_impl::<LOCAL>(input, scheme);
    let spent = t.elapsed().as_nanos() as u64;
    RESCUE_NS.fetch_add(spent, Ordering::Relaxed);
    TLS_RESCUE_NS.with(|c| c.set(c.get() + spent));
    out
}

/// One SIMD instruction set: the i16-lane operations the wavefront needs.
trait Engine: Copy {
    const LANES: usize;
    type V: Copy;
    unsafe fn splat(v: i16) -> Self::V;
    unsafe fn loadu(p: *const i16) -> Self::V;
    unsafe fn storeu(p: *mut i16, v: Self::V);
    unsafe fn adds(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn subs(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn max(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn min(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn cmpeq(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn cmpgt(a: Self::V, b: Self::V) -> Self::V;
    unsafe fn and(a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise select: `mask` lanes all-ones take `yes`, zeros take `no`.
    unsafe fn blendv(no: Self::V, yes: Self::V, mask: Self::V) -> Self::V;
    /// Byte-granular mask of `v` (2 bits per i16 lane); nonzero iff any
    /// lane of a compare result is set.
    unsafe fn movemask(v: Self::V) -> u32;
    unsafe fn hmax(v: Self::V) -> i16;
    unsafe fn hmin(v: Self::V) -> i16;
}

#[derive(Clone, Copy)]
struct Avx2;

impl Engine for Avx2 {
    const LANES: usize = 16;
    type V = __m256i;
    #[inline(always)]
    unsafe fn splat(v: i16) -> __m256i {
        _mm256_set1_epi16(v)
    }
    #[inline(always)]
    unsafe fn loadu(p: *const i16) -> __m256i {
        _mm256_loadu_si256(p as *const __m256i)
    }
    #[inline(always)]
    unsafe fn storeu(p: *mut i16, v: __m256i) {
        _mm256_storeu_si256(p as *mut __m256i, v)
    }
    #[inline(always)]
    unsafe fn adds(a: __m256i, b: __m256i) -> __m256i {
        _mm256_adds_epi16(a, b)
    }
    #[inline(always)]
    unsafe fn subs(a: __m256i, b: __m256i) -> __m256i {
        _mm256_subs_epi16(a, b)
    }
    #[inline(always)]
    unsafe fn max(a: __m256i, b: __m256i) -> __m256i {
        _mm256_max_epi16(a, b)
    }
    #[inline(always)]
    unsafe fn min(a: __m256i, b: __m256i) -> __m256i {
        _mm256_min_epi16(a, b)
    }
    #[inline(always)]
    unsafe fn cmpeq(a: __m256i, b: __m256i) -> __m256i {
        _mm256_cmpeq_epi16(a, b)
    }
    #[inline(always)]
    unsafe fn cmpgt(a: __m256i, b: __m256i) -> __m256i {
        _mm256_cmpgt_epi16(a, b)
    }
    #[inline(always)]
    unsafe fn and(a: __m256i, b: __m256i) -> __m256i {
        _mm256_and_si256(a, b)
    }
    #[inline(always)]
    unsafe fn blendv(no: __m256i, yes: __m256i, mask: __m256i) -> __m256i {
        // The i16 compare masks are all-ones/all-zero per lane, so the
        // byte-granular blend selects whole lanes.
        _mm256_blendv_epi8(no, yes, mask)
    }
    #[inline(always)]
    unsafe fn movemask(v: __m256i) -> u32 {
        _mm256_movemask_epi8(v) as u32
    }
    #[inline(always)]
    unsafe fn hmax(v: __m256i) -> i16 {
        let m = _mm_max_epi16(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
        let m = _mm_max_epi16(m, _mm_srli_si128::<8>(m));
        let m = _mm_max_epi16(m, _mm_srli_si128::<4>(m));
        let m = _mm_max_epi16(m, _mm_srli_si128::<2>(m));
        _mm_extract_epi16::<0>(m) as i16
    }
    #[inline(always)]
    unsafe fn hmin(v: __m256i) -> i16 {
        let m = _mm_min_epi16(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
        let m = _mm_min_epi16(m, _mm_srli_si128::<8>(m));
        let m = _mm_min_epi16(m, _mm_srli_si128::<4>(m));
        let m = _mm_min_epi16(m, _mm_srli_si128::<2>(m));
        _mm_extract_epi16::<0>(m) as i16
    }
}

#[derive(Clone, Copy)]
struct Sse41;

impl Engine for Sse41 {
    const LANES: usize = 8;
    type V = __m128i;
    #[inline(always)]
    unsafe fn splat(v: i16) -> __m128i {
        _mm_set1_epi16(v)
    }
    #[inline(always)]
    unsafe fn loadu(p: *const i16) -> __m128i {
        _mm_loadu_si128(p as *const __m128i)
    }
    #[inline(always)]
    unsafe fn storeu(p: *mut i16, v: __m128i) {
        _mm_storeu_si128(p as *mut __m128i, v)
    }
    #[inline(always)]
    unsafe fn adds(a: __m128i, b: __m128i) -> __m128i {
        _mm_adds_epi16(a, b)
    }
    #[inline(always)]
    unsafe fn subs(a: __m128i, b: __m128i) -> __m128i {
        _mm_subs_epi16(a, b)
    }
    #[inline(always)]
    unsafe fn max(a: __m128i, b: __m128i) -> __m128i {
        _mm_max_epi16(a, b)
    }
    #[inline(always)]
    unsafe fn min(a: __m128i, b: __m128i) -> __m128i {
        _mm_min_epi16(a, b)
    }
    #[inline(always)]
    unsafe fn cmpeq(a: __m128i, b: __m128i) -> __m128i {
        _mm_cmpeq_epi16(a, b)
    }
    #[inline(always)]
    unsafe fn cmpgt(a: __m128i, b: __m128i) -> __m128i {
        _mm_cmpgt_epi16(a, b)
    }
    #[inline(always)]
    unsafe fn and(a: __m128i, b: __m128i) -> __m128i {
        _mm_and_si128(a, b)
    }
    #[inline(always)]
    unsafe fn blendv(no: __m128i, yes: __m128i, mask: __m128i) -> __m128i {
        _mm_blendv_epi8(no, yes, mask)
    }
    #[inline(always)]
    unsafe fn movemask(v: __m128i) -> u32 {
        _mm_movemask_epi8(v) as u32
    }
    #[inline(always)]
    unsafe fn hmax(v: __m128i) -> i16 {
        let m = _mm_max_epi16(v, _mm_srli_si128::<8>(v));
        let m = _mm_max_epi16(m, _mm_srli_si128::<4>(m));
        let m = _mm_max_epi16(m, _mm_srli_si128::<2>(m));
        _mm_extract_epi16::<0>(m) as i16
    }
    #[inline(always)]
    unsafe fn hmin(v: __m128i) -> i16 {
        let m = _mm_min_epi16(v, _mm_srli_si128::<8>(v));
        let m = _mm_min_epi16(m, _mm_srli_si128::<4>(m));
        let m = _mm_min_epi16(m, _mm_srli_si128::<2>(m));
        _mm_extract_epi16::<0>(m) as i16
    }
}

#[inline(always)]
fn clamp16(v: i32) -> i16 {
    v.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16
}

/// Compute one tile with the anti-diagonal wavefront, or return `None` when
/// the i16 band cannot hold it (the caller re-runs the tile in scalar i32).
///
/// Bit-identical to [`compute_block_impl`] whenever it returns `Some`:
/// identical borders, cell count, and deterministic best cell.
///
/// # Safety
///
/// The CPU must support the instruction set of `E`; callers reach this only
/// through the `#[target_feature]` wrappers below after a runtime check.
#[inline(always)]
unsafe fn wave<E: Engine, const LOCAL: bool>(
    input: BlockInput<'_>,
    scheme: &ScoreScheme,
) -> Option<BlockOutput> {
    let bh = input.a_rows.len();
    let bw = input.b_cols.len();
    debug_assert!(bh >= 1 && bw >= 1);
    debug_assert_eq!(input.top.width(), bw, "top border width mismatch");
    debug_assert_eq!(input.left.height(), bh, "left border height mismatch");
    debug_assert_eq!(
        input.top.h[0], input.left.h[0],
        "top and left borders disagree on the corner element"
    );
    debug_assert!(input.row_offset >= 1 && input.col_offset >= 1);

    let bias = i64::from(input.top.h[0]);

    // Overflow pre-scan: the largest score change any single DP step can
    // make, times the longest in-tile path plus slack, bounds how far any
    // in-tile value can drift from the border extremes. If that drift could
    // leave the i16 band, rescue to scalar before computing anything. The
    // bound is directional: a step can only *raise* a score by the match
    // bonus, but can *lower* it by a fresh gap open+extend or a mismatch —
    // so high-bias drift uses the (usually much smaller) match step and
    // large tiles stay vectorized far longer than a symmetric bound allows.
    let path = (bh + bw + 4) as i64;
    let margin_up = path * i64::from(scheme.match_score);
    let margin_down = path
        * (i64::from(scheme.gap_open) + i64::from(scheme.gap_extend))
            .max(-i64::from(scheme.mismatch_score));
    let mut lo = bias;
    let mut hi = bias;
    for &v in input.top.h.iter().chain(input.left.h.iter()) {
        lo = lo.min(i64::from(v));
        hi = hi.max(i64::from(v));
    }
    for &v in input.top.f.iter().chain(input.left.e.iter()) {
        if v > NEG_INF / 2 {
            lo = lo.min(i64::from(v));
            hi = hi.max(i64::from(v));
        }
    }
    if hi - bias + margin_up > BAND || bias - lo + margin_down > BAND {
        return None;
    }

    let lanes = E::LANES;
    let open_ext = scheme.gap_open + scheme.gap_extend;
    let ext = scheme.gap_extend;

    let reb_h = |v: Score| -> i16 { (i64::from(v) - bias) as i16 };
    let reb_aux = |v: Score| -> i16 {
        if v <= NEG_INF / 2 {
            NEG_INF16
        } else {
            (i64::from(v) - bias) as i16
        }
    };

    let a16: Vec<i16> = input.a_rows.iter().map(|&c| i16::from(c)).collect();
    // b reversed: the vector load for cells (k, d−k), k ascending, reads
    // b_rev16[bw + k − d ..] contiguously.
    let mut b_rev16 = vec![0i16; bw];
    for (x, &c) in input.b_cols.iter().enumerate() {
        b_rev16[bw - 1 - x] = i16::from(c);
    }

    // Rolling anti-diagonal state, indexed by tile row k (0 = border row):
    // H at diagonals d−2/d−1/d, E and F at d−1/d. Slots outside the valid
    // range of a diagonal hold stale values that are provably never read.
    let len = bh + 1;
    let mut hp2 = vec![NEG_INF16; len];
    let mut hp1 = vec![NEG_INF16; len];
    let mut hc = vec![NEG_INF16; len];
    let mut ep = vec![NEG_INF16; len];
    let mut ec = vec![NEG_INF16; len];
    let mut fp = vec![NEG_INF16; len];
    let mut fc = vec![NEG_INF16; len];

    // Diagonals 0 and 1 are pure border cells.
    hp2[0] = reb_h(input.top.h[0]);
    hp1[0] = reb_h(input.top.h[1]);
    hp1[1] = reb_h(input.left.h[1]);
    ep[1] = reb_aux(input.left.e[1]);
    fp[0] = reb_aux(input.top.f[1]);

    // Rebased zero floor for local semantics. When `bias` exceeds i16 range
    // the clamp pins it at i16::MIN, which is exact: the pre-scan guarantees
    // in-tile values stay within BAND of the (huge) corner, so neither the
    // true zero floor nor the clamped one can ever bind.
    let floor16: i16 = (-bias).clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16;

    let v_ext = E::splat(ext as i16);
    let v_oe = E::splat(open_ext as i16);
    let v_match = E::splat(scheme.match_score as i16);
    let v_mis = E::splat(scheme.mismatch_score as i16);
    let v_four = E::splat(4);
    let v_floor = E::splat(floor16);
    let v_ninf = E::splat(NEG_INF16);

    // Band check accumulators over every computed (pre-store) H value.
    let mut v_maxall = v_ninf;
    let mut v_minall = E::splat(i16::MAX);
    let mut s_maxall: i32 = i32::from(NEG_INF16);
    let mut s_minall: i32 = i32::from(i16::MAX);

    // Outgoing borders, captured lane-exactly as diagonals sweep past the
    // tile's bottom row and right column (index 0 unused here; the corner
    // is attached during assembly).
    let mut bot_h16 = vec![0i16; bw + 1];
    let mut bot_f16 = vec![0i16; bw + 1];
    let mut rgt_h16 = vec![0i16; bh + 1];
    let mut rgt_e16 = vec![0i16; bh + 1];

    let mut best = BestCell::ZERO;

    for d in 2..=(bh + bw) {
        let klo = if d > bw { d - bw } else { 1 };
        let khi = if d - 1 < bh { d - 1 } else { bh };
        let span = khi - klo + 1;
        let kend = klo + (span - span % lanes);

        let mut v_dmax = v_ninf;
        let mut v_dmin = E::splat(i16::MAX);
        let mut s_dmax: i32 = i32::from(NEG_INF16);

        // Full-lane chunks. Every lane is a real cell — the ragged tail
        // runs scalar below — so no masking is needed and the min/max
        // accumulators never see garbage.
        let mut k = klo;
        while k < kend {
            let hd = E::loadu(hp2.as_ptr().add(k - 1));
            let hu = E::loadu(hp1.as_ptr().add(k - 1));
            let hl = E::loadu(hp1.as_ptr().add(k));
            let fv = E::max(
                E::subs(E::loadu(fp.as_ptr().add(k - 1)), v_ext),
                E::subs(hu, v_oe),
            );
            let ev = E::max(
                E::subs(E::loadu(ep.as_ptr().add(k)), v_ext),
                E::subs(hl, v_oe),
            );
            let va = E::loadu(a16.as_ptr().add(k - 1));
            let vb = E::loadu(b_rev16.as_ptr().add(bw + k - d));
            let mm = E::and(E::cmpeq(va, vb), E::cmpgt(v_four, va));
            let sub = E::blendv(v_mis, v_match, mm);
            let mut hv = E::adds(hd, sub);
            hv = E::max(hv, ev);
            hv = E::max(hv, fv);
            if LOCAL {
                hv = E::max(hv, v_floor);
            }
            E::storeu(hc.as_mut_ptr().add(k), hv);
            E::storeu(ec.as_mut_ptr().add(k), ev);
            E::storeu(fc.as_mut_ptr().add(k), fv);
            v_dmax = E::max(v_dmax, hv);
            v_dmin = E::min(v_dmin, hv);
            k += lanes;
        }
        // Band accumulators merge once per diagonal, not per step.
        v_maxall = E::max(v_maxall, v_dmax);
        v_minall = E::min(v_minall, v_dmin);
        // Scalar tail in i32, clamped at store: identical to the saturating
        // lanes because real arms always stay in band and NEG_INF16-derived
        // arms always lose the max (see module docs).
        for k in kend..=khi {
            let hd = i32::from(hp2[k - 1]);
            let hu = i32::from(hp1[k - 1]);
            let hl = i32::from(hp1[k]);
            let f = (i32::from(fp[k - 1]) - ext).max(hu - open_ext);
            let e = (i32::from(ep[k]) - ext).max(hl - open_ext);
            let ca = a16[k - 1];
            let cb = b_rev16[bw + k - d];
            let sub = if ca == cb && ca < 4 {
                scheme.match_score
            } else {
                scheme.mismatch_score
            };
            let mut h = (hd + sub).max(e).max(f);
            if LOCAL && h < i32::from(floor16) {
                h = i32::from(floor16);
            }
            s_dmax = s_dmax.max(h);
            s_maxall = s_maxall.max(h);
            s_minall = s_minall.min(h);
            hc[k] = clamp16(h);
            ec[k] = clamp16(e);
            fc[k] = clamp16(f);
        }

        // Border capture (before the patches below — patched slots are
        // border cells, never tile cells).
        if d > bh {
            bot_h16[d - bh] = hc[bh];
            bot_f16[d - bh] = fc[bh];
        }
        if d > bw {
            rgt_h16[d - bw] = hc[d - bw];
            rgt_e16[d - bw] = ec[d - bw];
        }

        // Best-cell tracking: a diagonal matters only when its max can reach
        // the running best. `>=` (not `>`) because a later diagonal can tie
        // the score at a smaller row index, which wins the deterministic
        // (score, i, j) order. The diagonal's own winner is fully determined
        // by its max: among equal-H cells the smallest k has the smallest
        // row index (and a larger k at the same d means a smaller column,
        // which only matters at the same row — impossible within one
        // diagonal). So instead of building a BestCell per cell — which
        // degenerates to scalar speed on homologous inputs, where the score
        // climbs on almost every diagonal — locate the first lane equal to
        // the max with a vector compare.
        //
        // On a tile that ends up out of band, `dmax as i16` may not match
        // any lane; the candidate (or the whole best) is garbage either
        // way, because the band post-check below discards the tile.
        let dmax = i64::from(s_dmax).max(i64::from(E::hmax(v_dmax)));
        if dmax + bias >= i64::from(best.score.max(1)) {
            let v_target = E::splat(dmax as i16);
            let mut hit = None;
            let mut k = klo;
            while k < kend {
                let m = E::movemask(E::cmpeq(E::loadu(hc.as_ptr().add(k)), v_target));
                if m != 0 {
                    hit = Some(k + m.trailing_zeros() as usize / 2);
                    break;
                }
                k += lanes;
            }
            if hit.is_none() {
                hit = (kend..=khi).find(|&k| i64::from(hc[k]) == dmax);
            }
            if let Some(k) = hit {
                let cand = BestCell::new(
                    (dmax + bias) as Score,
                    input.row_offset + k - 1,
                    input.col_offset + (d - k) - 1,
                );
                if cand.beats(&best) {
                    best = cand;
                }
            }
        }

        // Patch the border cells the next diagonals read: row 0 comes from
        // the top border, column 0 from the left border.
        if d <= bw {
            hc[0] = reb_h(input.top.h[d]);
            fc[0] = reb_aux(input.top.f[d]);
        }
        if d <= bh {
            hc[d] = reb_h(input.left.h[d]);
            ec[d] = reb_aux(input.left.e[d]);
        }

        std::mem::swap(&mut hp2, &mut hp1);
        std::mem::swap(&mut hp1, &mut hc);
        std::mem::swap(&mut ep, &mut ec);
        std::mem::swap(&mut fp, &mut fc);
    }

    // Belt-and-braces band check: the pre-scan margin should make this
    // unreachable, but if any computed H touched the band edge the tile is
    // rescued rather than trusted.
    let maxall = i64::from(s_maxall).max(i64::from(E::hmax(v_maxall)));
    let minall = i64::from(s_minall).min(i64::from(E::hmin(v_minall)));
    if maxall > BAND || minall < -BAND {
        return None;
    }

    // Rebase back. Emitted E/F values are always real (each is ≥ some real
    // H minus open+extend — the border rows that carry NEG_INF never reach
    // the emitted edges), so adding the bias back is exact.
    let mut bottom_h = Vec::with_capacity(bw + 1);
    let mut bottom_f = Vec::with_capacity(bw + 1);
    bottom_h.push(input.left.h[bh]);
    bottom_f.push(NEG_INF);
    bottom_h.extend(
        bot_h16[1..=bw]
            .iter()
            .map(|&v| (i64::from(v) + bias) as Score),
    );
    bottom_f.extend(
        bot_f16[1..=bw]
            .iter()
            .map(|&v| (i64::from(v) + bias) as Score),
    );
    let mut right_h = Vec::with_capacity(bh + 1);
    let mut right_e = Vec::with_capacity(bh + 1);
    right_h.push(input.top.h[bw]);
    right_e.push(NEG_INF);
    right_h.extend(
        rgt_h16[1..=bh]
            .iter()
            .map(|&v| (i64::from(v) + bias) as Score),
    );
    right_e.extend(
        rgt_e16[1..=bh]
            .iter()
            .map(|&v| (i64::from(v) + bias) as Score),
    );

    Some(BlockOutput {
        bottom: RowBorder {
            h: bottom_h,
            f: bottom_f,
        },
        right: ColBorder {
            h: right_h,
            e: right_e,
        },
        best,
        cells: bh as u64 * bw as u64,
    })
}

/// # Safety
/// Requires AVX2 (checked by `kernel::select` before this is reachable).
#[target_feature(enable = "avx2")]
unsafe fn wave_avx2<const LOCAL: bool>(
    input: BlockInput<'_>,
    scheme: &ScoreScheme,
) -> Option<BlockOutput> {
    wave::<Avx2, LOCAL>(input, scheme)
}

/// # Safety
/// Requires SSE4.1 (checked by `kernel::select` before this is reachable).
#[target_feature(enable = "sse4.1")]
unsafe fn wave_sse41<const LOCAL: bool>(
    input: BlockInput<'_>,
    scheme: &ScoreScheme,
) -> Option<BlockOutput> {
    wave::<Sse41, LOCAL>(input, scheme)
}

/// Below ~2 vectors per anti-diagonal the wavefront bookkeeping outweighs
/// the lane win; such tiles run scalar without counting as rescues.
const fn vector_min(lanes: usize) -> usize {
    2 * lanes
}

/// The AVX2 engine (16 × i16 lanes).
pub(crate) struct Avx2Kernel {
    _priv: (),
}

impl Avx2Kernel {
    fn dispatch<const LOCAL: bool>(input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput {
        let (bh, bw) = (input.a_rows.len(), input.b_cols.len());
        if bh.min(bw) >= vector_min(Avx2::LANES) {
            // SAFETY: this kernel is only handed out by `kernel::select`
            // after a successful runtime AVX2 check.
            return match unsafe { wave_avx2::<LOCAL>(input, scheme) } {
                Some(out) => out,
                None => rescue_block::<LOCAL>(input, scheme),
            };
        }
        compute_block_impl::<LOCAL>(input, scheme)
    }
}

impl Kernel for Avx2Kernel {
    fn id(&self) -> KernelId {
        KernelId::Avx2
    }
    fn block(&self, input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput {
        Self::dispatch::<true>(input, scheme)
    }
    fn block_anchored(&self, input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput {
        Self::dispatch::<false>(input, scheme)
    }
}

/// The SSE4.1 engine (8 × i16 lanes).
pub(crate) struct Sse41Kernel {
    _priv: (),
}

impl Sse41Kernel {
    fn dispatch<const LOCAL: bool>(input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput {
        let (bh, bw) = (input.a_rows.len(), input.b_cols.len());
        if bh.min(bw) >= vector_min(Sse41::LANES) {
            // SAFETY: this kernel is only handed out by `kernel::select`
            // after a successful runtime SSE4.1 check.
            return match unsafe { wave_sse41::<LOCAL>(input, scheme) } {
                Some(out) => out,
                None => rescue_block::<LOCAL>(input, scheme),
            };
        }
        compute_block_impl::<LOCAL>(input, scheme)
    }
}

impl Kernel for Sse41Kernel {
    fn id(&self) -> KernelId {
        KernelId::Sse41
    }
    fn block(&self, input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput {
        Self::dispatch::<true>(input, scheme)
    }
    fn block_anchored(&self, input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput {
        Self::dispatch::<false>(input, scheme)
    }
}

static AVX2_KERNEL: Avx2Kernel = Avx2Kernel { _priv: () };
static SSE41_KERNEL: Sse41Kernel = Sse41Kernel { _priv: () };

pub(crate) fn avx2_kernel() -> &'static dyn Kernel {
    &AVX2_KERNEL
}

pub(crate) fn sse41_kernel() -> &'static dyn Kernel {
    &SSE41_KERNEL
}

#[cfg(test)]
mod tests {
    use super::*;
    use megasw_seq::{ChromosomeGenerator, DivergenceModel, GenerateConfig};

    fn engines() -> Vec<(&'static str, &'static dyn Kernel)> {
        let mut out: Vec<(&'static str, &'static dyn Kernel)> = Vec::new();
        if std::arch::is_x86_feature_detected!("avx2") {
            out.push(("avx2", avx2_kernel()));
        }
        if std::arch::is_x86_feature_detected!("sse4.1") {
            out.push(("sse41", sse41_kernel()));
        }
        out
    }

    fn run_wave(
        name: &str,
        local: bool,
        input: BlockInput<'_>,
        scheme: &ScoreScheme,
    ) -> Option<BlockOutput> {
        // SAFETY: `engines()` only yields names whose feature check passed.
        unsafe {
            match (name, local) {
                ("avx2", true) => wave_avx2::<true>(input, scheme),
                ("avx2", false) => wave_avx2::<false>(input, scheme),
                ("sse41", true) => wave_sse41::<true>(input, scheme),
                ("sse41", false) => wave_sse41::<false>(input, scheme),
                _ => unreachable!(),
            }
        }
    }

    fn scalar_out(local: bool, input: BlockInput<'_>, scheme: &ScoreScheme) -> BlockOutput {
        if local {
            compute_block_impl::<true>(input, scheme)
        } else {
            compute_block_impl::<false>(input, scheme)
        }
    }

    #[test]
    fn wave_matches_scalar_on_whole_matrix_tiles() {
        for (bh, bw, seed) in [
            (33usize, 40usize, 1u64),
            (64, 96, 2),
            (100, 100, 3),
            (48, 200, 4),
            (200, 48, 5),
        ] {
            let a = ChromosomeGenerator::new(GenerateConfig::sized(bh, seed)).generate();
            let b = ChromosomeGenerator::new(GenerateConfig::sized(bw, seed + 77)).generate();
            for scheme in [ScoreScheme::cudalign(), ScoreScheme::lenient()] {
                for local in [true, false] {
                    let (top, left) = if local {
                        (RowBorder::zero(bw), ColBorder::zero(bh))
                    } else {
                        (
                            RowBorder::anchored(bw, 1, &scheme),
                            ColBorder::anchored(bh, 1, &scheme),
                        )
                    };
                    let input = BlockInput {
                        a_rows: a.codes(),
                        b_cols: b.codes(),
                        top: &top,
                        left: &left,
                        row_offset: 1,
                        col_offset: 1,
                    };
                    let want = scalar_out(local, input, &scheme);
                    for (name, _) in engines() {
                        let got = run_wave(name, local, input, &scheme)
                            .unwrap_or_else(|| panic!("{name}: unexpected rescue"));
                        assert_eq!(got, want, "{name} {bh}x{bw} local={local}");
                    }
                }
            }
        }
    }

    #[test]
    fn wave_matches_scalar_with_composed_borders() {
        // The bottom-right tile of a 2×2 split sees genuinely non-trivial
        // incoming borders (produced by the scalar kernel) — the exact
        // situation the pipeline puts the vector engines in.
        let scheme = ScoreScheme::cudalign();
        let a = ChromosomeGenerator::new(GenerateConfig::sized(260, 0x51_01)).generate();
        let (b, _) = DivergenceModel::test_scale(0x51_02).apply(&a);
        let (si, sj) = (130usize, 120usize);
        for local in [true, false] {
            let (top0, left0) = if local {
                (RowBorder::zero(sj), ColBorder::zero(si))
            } else {
                (
                    RowBorder::anchored(sj, 1, &scheme),
                    ColBorder::anchored(si, 1, &scheme),
                )
            };
            let t00 = scalar_out(
                local,
                BlockInput {
                    a_rows: &a.codes()[..si],
                    b_cols: &b.codes()[..sj],
                    top: &top0,
                    left: &left0,
                    row_offset: 1,
                    col_offset: 1,
                },
                &scheme,
            );
            let (top01, left10) = if local {
                (RowBorder::zero(b.len() - sj), ColBorder::zero(a.len() - si))
            } else {
                (
                    RowBorder::anchored(b.len() - sj, sj + 1, &scheme),
                    ColBorder::anchored(a.len() - si, si + 1, &scheme),
                )
            };
            let t01 = scalar_out(
                local,
                BlockInput {
                    a_rows: &a.codes()[..si],
                    b_cols: &b.codes()[sj..],
                    top: &top01,
                    left: &t00.right,
                    row_offset: 1,
                    col_offset: sj + 1,
                },
                &scheme,
            );
            let t10 = scalar_out(
                local,
                BlockInput {
                    a_rows: &a.codes()[si..],
                    b_cols: &b.codes()[..sj],
                    top: &t00.bottom,
                    left: &left10,
                    row_offset: si + 1,
                    col_offset: 1,
                },
                &scheme,
            );
            let t11_input = BlockInput {
                a_rows: &a.codes()[si..],
                b_cols: &b.codes()[sj..],
                top: &t01.bottom,
                left: &t10.right,
                row_offset: si + 1,
                col_offset: sj + 1,
            };
            let want = scalar_out(local, t11_input, &scheme);
            for (name, _) in engines() {
                let got = run_wave(name, local, t11_input, &scheme)
                    .unwrap_or_else(|| panic!("{name}: unexpected rescue"));
                assert_eq!(got, want, "{name} local={local}");
            }
        }
    }

    #[test]
    fn large_bias_tile_stays_vectorized_and_exact() {
        // Absolute border scores way beyond i16::MAX: the bias rebase keeps
        // the tile in i16 range — no rescue, bit-identical output.
        let scheme = ScoreScheme::cudalign();
        let (bh, bw) = (128usize, 128usize);
        let a = ChromosomeGenerator::new(GenerateConfig::sized(bh, 0x52_01)).generate();
        let b = ChromosomeGenerator::new(GenerateConfig::sized(bw, 0x52_02)).generate();
        let big: Score = 40_000;
        assert!(i64::from(big) > i64::from(i16::MAX));
        let top = RowBorder {
            h: vec![big; bw + 1],
            f: vec![NEG_INF; bw + 1],
        };
        let left = ColBorder {
            h: vec![big; bh + 1],
            e: vec![NEG_INF; bh + 1],
        };
        let input = BlockInput {
            a_rows: a.codes(),
            b_cols: b.codes(),
            top: &top,
            left: &left,
            row_offset: 500,
            col_offset: 900,
        };
        for local in [true, false] {
            let want = scalar_out(local, input, &scheme);
            assert!(want.best.score >= big, "borders must dominate the tile");
            for (name, _) in engines() {
                let got = run_wave(name, local, input, &scheme)
                    .unwrap_or_else(|| panic!("{name}: rebased tile should not rescue"));
                assert_eq!(got, want, "{name} local={local}");
            }
        }
    }

    #[test]
    fn wide_range_scheme_triggers_rescue_and_stays_exact() {
        // match = 30 over a 600×600 tile: the pre-scan margin alone exceeds
        // the band, so the wave refuses and the kernel falls back — and the
        // fallback is the scalar kernel, so outputs stay bit-identical.
        let scheme = ScoreScheme {
            match_score: 30,
            mismatch_score: -3,
            gap_open: 3,
            gap_extend: 2,
        };
        let n = 600usize;
        let a = ChromosomeGenerator::new(GenerateConfig::sized(n, 0x53_01)).generate();
        let top = RowBorder::zero(n);
        let left = ColBorder::zero(n);
        let input = BlockInput {
            a_rows: a.codes(),
            b_cols: a.codes(),
            top: &top,
            left: &left,
            row_offset: 1,
            col_offset: 1,
        };
        let want = scalar_out(true, input, &scheme);
        for (name, kernel) in engines() {
            assert!(
                run_wave(name, true, input, &scheme).is_none(),
                "{name}: expected an overflow rescue"
            );
            let before = rescue_count();
            let via_kernel = kernel.block(input, &scheme);
            assert_eq!(via_kernel, want, "{name}");
            assert!(rescue_count() > before, "{name}: rescue not counted");
        }
    }

    #[test]
    fn running_score_across_i16_max_is_bit_identical_to_reference() {
        // Satellite regression: a single tile whose running score crosses
        // i16::MAX mid-wave (identical 1200 bp sequences at match = 30 peak
        // at 36_000). The rescue path must reproduce the reference exactly.
        let scheme = ScoreScheme {
            match_score: 30,
            mismatch_score: -3,
            gap_open: 3,
            gap_extend: 2,
        };
        let a = ChromosomeGenerator::new(GenerateConfig::sized(1_200, 0x54_01)).generate();
        let want = crate::reference::reference_best(a.codes(), a.codes(), &scheme);
        assert!(
            i64::from(want.score) > i64::from(i16::MAX),
            "test must actually cross i16::MAX, got {}",
            want.score
        );
        for (name, kernel) in engines() {
            let got = kernel.best(a.codes(), a.codes(), &scheme);
            assert_eq!(got, want, "{name}");
        }
    }
}
