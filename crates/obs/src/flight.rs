//! Flight recorder: a lock-free ring of the last N structured events per
//! worker, for post-mortem debugging of faults the aggregate metrics
//! cannot explain.
//!
//! The post-run [`MetricsRegistry`](crate::metrics::MetricsRegistry) and
//! the span [`Recorder`](crate::span::Recorder) answer *"where did the
//! time go"*; neither answers *"what exactly was worker 2 doing in the
//! last milliseconds before the fault"*. The flight recorder does: every
//! worker owns one fixed-capacity ring (a lane) and appends one
//! [`FlightEvent`] per interesting step — row start, ring pop, compute,
//! checkpoint deposit, ring push, prune skip, fault. When the run dies
//! (device fault, panic, abort) or on demand (`--flight-dump`, the
//! `/flight` HTTP endpoint), the rings are dumped as JSONL, newest events
//! last, one object per line.
//!
//! ## Concurrency protocol
//!
//! Each lane is single-writer (its worker) / multi-reader (the dumper, a
//! live HTTP scrape). Slots are written under a per-slot **seqlock**: the
//! writer bumps the slot's sequence to *odd*, writes the payload, then
//! publishes the matching *even* sequence with `Release`. A reader
//! recomputes which even sequence a slot must carry for a given logical
//! index; any mismatch (torn write, concurrent overwrite, never written)
//! makes the reader skip that slot rather than emit garbage. Every field
//! is a relaxed atomic, so a race is at worst a skipped entry — never
//! undefined behaviour, never a lock a faulting worker could die holding.

use std::io::Write as _;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

/// What a [`FlightEvent`] records. Kept deliberately coarse: the point is
/// replaying the *shape* of the last moments, not a full trace (that is
/// what `--trace-out` is for).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// Worker picked up a new block-row.
    RowStart,
    /// Popped a border column from the predecessor ring.
    RingPop,
    /// Finished computing a tile (aux = tile column).
    Compute,
    /// Deposited a checkpoint wave.
    Checkpoint,
    /// Pushed a border column to the successor ring.
    RingPush,
    /// Skipped a pruned tile (aux = tile column).
    PruneSkip,
    /// The worker observed a fault (its own injected fault or a poisoned
    /// ring from a dead neighbour).
    Fault,
    /// The coordinator migrated block-columns at a checkpoint boundary
    /// (aux = the lane's new slab width in columns; dur_ns = 0).
    Rebalance,
}

impl FlightKind {
    /// Stable wire name used in the JSONL dump.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::RowStart => "row_start",
            FlightKind::RingPop => "ring_pop",
            FlightKind::Compute => "compute",
            FlightKind::Checkpoint => "checkpoint",
            FlightKind::RingPush => "ring_push",
            FlightKind::PruneSkip => "prune_skip",
            FlightKind::Fault => "fault",
            FlightKind::Rebalance => "rebalance",
        }
    }

    fn to_u64(self) -> u64 {
        match self {
            FlightKind::RowStart => 0,
            FlightKind::RingPop => 1,
            FlightKind::Compute => 2,
            FlightKind::Checkpoint => 3,
            FlightKind::RingPush => 4,
            FlightKind::PruneSkip => 5,
            FlightKind::Fault => 6,
            FlightKind::Rebalance => 7,
        }
    }

    fn from_u64(v: u64) -> Option<FlightKind> {
        Some(match v {
            0 => FlightKind::RowStart,
            1 => FlightKind::RingPop,
            2 => FlightKind::Compute,
            3 => FlightKind::Checkpoint,
            4 => FlightKind::RingPush,
            5 => FlightKind::PruneSkip,
            6 => FlightKind::Fault,
            7 => FlightKind::Rebalance,
            _ => return None,
        })
    }
}

/// One structured flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    pub kind: FlightKind,
    /// Device the event happened on.
    pub device: u32,
    /// Block-row the worker was processing.
    pub row: u64,
    /// Nanoseconds since the run epoch (wall or simulated).
    pub t_ns: u64,
    /// Duration of the step in nanoseconds (0 for instantaneous marks).
    pub dur_ns: u64,
    /// Kind-specific payload (tile column, fault code, …).
    pub aux: u64,
}

/// One seqlocked slot. `seq` is 0 while never written, odd while a write
/// is in flight, and `2 * wrap_generation + 2` once logical index
/// `generation * capacity + slot` has been published.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    kind: AtomicU64,
    device: AtomicU64,
    row: AtomicU64,
    t_ns: AtomicU64,
    dur_ns: AtomicU64,
    aux: AtomicU64,
}

/// One worker's ring.
struct Lane {
    /// Count of events ever recorded on this lane (logical write index).
    head: AtomicU64,
    slots: Vec<Slot>,
}

/// Fixed-capacity per-worker event rings. Clone the [`Arc`] into each
/// worker; record from the owning worker only, dump from anywhere.
pub struct FlightRecorder {
    lanes: Vec<Lane>,
    /// Power-of-two slots per lane.
    capacity: usize,
}

/// Default events retained per worker lane.
pub const DEFAULT_CAPACITY: usize = 256;

impl FlightRecorder {
    /// A recorder with `lanes` worker lanes of `capacity` events each
    /// (rounded up to a power of two, minimum 2).
    pub fn new(lanes: usize, capacity: usize) -> Arc<FlightRecorder> {
        let capacity = capacity.max(2).next_power_of_two();
        Arc::new(FlightRecorder {
            lanes: (0..lanes)
                .map(|_| Lane {
                    head: AtomicU64::new(0),
                    slots: (0..capacity).map(|_| Slot::default()).collect(),
                })
                .collect(),
            capacity,
        })
    }

    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append `event` to `lane`. Out-of-range lanes are dropped silently —
    /// same contract as [`LiveTelemetry`](crate::live::LiveTelemetry).
    ///
    /// Single-writer per lane: only the worker owning `lane` may call
    /// this. Readers racing a write skip the slot instead of tearing.
    pub fn record(&self, lane: usize, event: FlightEvent) {
        let Some(l) = self.lanes.get(lane) else {
            return;
        };
        let idx = l.head.load(Ordering::Relaxed);
        let slot = &l.slots[(idx as usize) & (self.capacity - 1)];
        let generation = idx / self.capacity as u64;
        // Seqlock write: odd = in flight, even = published.
        slot.seq.store(2 * generation + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.kind.store(event.kind.to_u64(), Ordering::Relaxed);
        slot.device.store(event.device as u64, Ordering::Relaxed);
        slot.row.store(event.row, Ordering::Relaxed);
        slot.t_ns.store(event.t_ns, Ordering::Relaxed);
        slot.dur_ns.store(event.dur_ns, Ordering::Relaxed);
        slot.aux.store(event.aux, Ordering::Relaxed);
        slot.seq.store(2 * generation + 2, Ordering::Release);
        l.head.store(idx + 1, Ordering::Release);
    }

    /// The retained events of `lane`, oldest first. Entries a concurrent
    /// writer is overwriting right now are skipped, not torn.
    pub fn events(&self, lane: usize) -> Vec<FlightEvent> {
        let Some(l) = self.lanes.get(lane) else {
            return Vec::new();
        };
        let head = l.head.load(Ordering::Acquire);
        let start = head.saturating_sub(self.capacity as u64);
        let mut out = Vec::with_capacity((head - start) as usize);
        for idx in start..head {
            let slot = &l.slots[(idx as usize) & (self.capacity - 1)];
            let expect = 2 * (idx / self.capacity as u64) + 2;
            if slot.seq.load(Ordering::Acquire) != expect {
                continue; // torn or already lapped by the writer
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let event = FlightEvent {
                kind: match FlightKind::from_u64(kind) {
                    Some(k) => k,
                    None => continue,
                },
                device: slot.device.load(Ordering::Relaxed) as u32,
                row: slot.row.load(Ordering::Relaxed),
                t_ns: slot.t_ns.load(Ordering::Relaxed),
                dur_ns: slot.dur_ns.load(Ordering::Relaxed),
                aux: slot.aux.load(Ordering::Relaxed),
            };
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != expect {
                continue; // overwritten while we were reading
            }
            out.push(event);
        }
        out
    }

    /// All lanes as JSONL: one JSON object per event, lanes in order,
    /// oldest events first within a lane. Each line parses with
    /// [`crate::json::parse`].
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for lane in 0..self.lanes.len() {
            for e in self.events(lane) {
                out.push_str(&format!(
                    concat!(
                        "{{\"lane\": {}, \"kind\": \"{}\", \"device\": {}, ",
                        "\"row\": {}, \"t_ns\": {}, \"dur_ns\": {}, \"aux\": {}}}\n"
                    ),
                    lane,
                    e.kind.as_str(),
                    e.device,
                    e.row,
                    e.t_ns,
                    e.dur_ns,
                    e.aux
                ));
            }
        }
        out
    }

    /// Write the JSONL dump to `path`.
    pub fn dump_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.dump_jsonl().as_bytes())?;
        f.flush()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("lanes", &self.lanes.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn ev(kind: FlightKind, row: u64) -> FlightEvent {
        FlightEvent {
            kind,
            device: 1,
            row,
            t_ns: row * 10,
            dur_ns: 3,
            aux: 7,
        }
    }

    #[test]
    fn records_in_order_and_wraps_to_the_last_n() {
        let fr = FlightRecorder::new(1, 4);
        assert_eq!(fr.capacity(), 4);
        for row in 0..10 {
            fr.record(0, ev(FlightKind::Compute, row));
        }
        let events: Vec<u64> = fr.events(0).iter().map(|e| e.row).collect();
        assert_eq!(events, vec![6, 7, 8, 9]);
    }

    #[test]
    fn lanes_are_independent_and_out_of_range_is_dropped() {
        let fr = FlightRecorder::new(2, 8);
        fr.record(0, ev(FlightKind::RingPop, 1));
        fr.record(1, ev(FlightKind::RingPush, 2));
        fr.record(5, ev(FlightKind::Fault, 3)); // no lane 5: dropped
        assert_eq!(fr.events(0).len(), 1);
        assert_eq!(fr.events(1).len(), 1);
        assert_eq!(fr.events(0)[0].kind, FlightKind::RingPop);
        assert_eq!(fr.events(1)[0].kind, FlightKind::RingPush);
        assert!(fr.events(5).is_empty());
    }

    #[test]
    fn dump_is_valid_jsonl_with_all_fields() {
        let fr = FlightRecorder::new(2, 8);
        fr.record(0, ev(FlightKind::RowStart, 4));
        fr.record(1, ev(FlightKind::Fault, 9));
        let dump = fr.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = json::parse(line).expect("each dump line is valid JSON");
            for key in ["lane", "kind", "device", "row", "t_ns", "dur_ns", "aux"] {
                assert!(v.get(key).is_some(), "missing {key} in {line}");
            }
        }
        let fault = json::parse(lines[1]).unwrap();
        assert_eq!(fault.get("kind").unwrap().as_str(), Some("fault"));
        assert_eq!(fault.get("lane").unwrap().as_f64(), Some(1.0));
        assert_eq!(fault.get("row").unwrap().as_f64(), Some(9.0));
    }

    #[test]
    fn dump_to_writes_the_file() {
        let fr = FlightRecorder::new(1, 4);
        fr.record(0, ev(FlightKind::Checkpoint, 2));
        let path =
            std::env::temp_dir().join(format!("megasw-flight-test-{}.jsonl", std::process::id()));
        fr.dump_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"checkpoint\""));
    }

    #[test]
    fn concurrent_reads_never_observe_torn_events() {
        // One writer hammers a tiny ring while a reader scrapes it; every
        // event the reader sees must be internally consistent (we encode
        // the row into every payload field so a tear is detectable).
        let fr = FlightRecorder::new(1, 4);
        let fr2 = Arc::clone(&fr);
        let writer = std::thread::spawn(move || {
            for row in 0..20_000u64 {
                fr2.record(
                    0,
                    FlightEvent {
                        kind: FlightKind::Compute,
                        device: (row % 7) as u32,
                        row,
                        t_ns: row,
                        dur_ns: row,
                        aux: row,
                    },
                );
            }
        });
        let mut seen = 0usize;
        for _ in 0..2_000 {
            for e in fr.events(0) {
                seen += 1;
                assert_eq!(e.t_ns, e.row, "torn event: {e:?}");
                assert_eq!(e.dur_ns, e.row, "torn event: {e:?}");
                assert_eq!(e.aux, e.row, "torn event: {e:?}");
                assert_eq!(e.device as u64, e.row % 7, "torn event: {e:?}");
            }
        }
        writer.join().unwrap();
        assert!(seen > 0, "reader never saw a single stable event");
        // After the writer quiesces the full ring is readable.
        assert_eq!(fr.events(0).len(), 4);
    }
}
