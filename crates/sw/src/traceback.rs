//! Optimal local alignment retrieval in linear space.
//!
//! The paper's multi-GPU system computes stage 1 (best score + end point);
//! the CUDAlign pipeline it belongs to recovers the actual alignment in
//! later stages using Myers–Miller linear-space techniques. This module
//! implements that retrieval:
//!
//! 1. **Endpoint** — [`crate::gotoh::rolling_best`] finds the best cell
//!    `(iₑ, jₑ)` and score `S`.
//! 2. **Start point** — an *anchored* reverse scan ([`anchored_best`]) over
//!    the reversed prefixes `rev(a[..iₑ])`, `rev(b[..jₑ])` finds the cell
//!    where a global-to-cell path attains `S`; mapped back it is the start
//!    `(iₛ, jₛ)` of an optimal alignment ending exactly at `(iₑ, jₑ)`.
//! 3. **Path** — [`myers_miller`] computes a maximal global alignment of
//!    the bounded segments `a[iₛ..=iₑ]` × `b[jₛ..=jₑ]` in `O(min(m,n))`
//!    memory via divide-and-conquer on the middle row, with the classic
//!    two-delete join for splits that land inside a vertical gap.
//!
//! Every produced [`LocalAlignment`] is checked (in tests and debug builds)
//! to re-score to exactly `S` under [`score_of_ops`].

use crate::cell::{BestCell, Score, NEG_INF};
use crate::gotoh::rolling_best;
use crate::scoring::ScoreScheme;

/// One alignment column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// `a[i]` aligned to `b[j]`, equal bases.
    Match,
    /// `a[i]` aligned to `b[j]`, different bases.
    Mismatch,
    /// Gap in `a`: consumes one base of `b`.
    Insert,
    /// Gap in `b`: consumes one base of `a`.
    Delete,
}

/// An optimal local alignment with its path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAlignment {
    pub score: Score,
    /// 1-based inclusive start position in `a` (0 for the empty alignment).
    pub start_i: usize,
    /// 1-based inclusive start position in `b`.
    pub start_j: usize,
    /// 1-based inclusive end position in `a`.
    pub end_i: usize,
    /// 1-based inclusive end position in `b`.
    pub end_j: usize,
    pub ops: Vec<AlignOp>,
}

impl LocalAlignment {
    /// The empty alignment (score 0).
    pub fn empty() -> Self {
        LocalAlignment {
            score: 0,
            start_i: 0,
            start_j: 0,
            end_i: 0,
            end_j: 0,
            ops: Vec::new(),
        }
    }

    /// Number of alignment columns.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is this the empty alignment?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Fraction of columns that are matches (0.0 for the empty alignment).
    pub fn identity(&self) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        let matches = self.ops.iter().filter(|o| **o == AlignOp::Match).count();
        matches as f64 / self.ops.len() as f64
    }

    /// Compact CIGAR-like string (`=`, `X`, `I`, `D` with run lengths).
    pub fn cigar(&self) -> String {
        let mut out = String::new();
        let mut run: Option<(char, usize)> = None;
        for op in &self.ops {
            let c = match op {
                AlignOp::Match => '=',
                AlignOp::Mismatch => 'X',
                AlignOp::Insert => 'I',
                AlignOp::Delete => 'D',
            };
            match &mut run {
                Some((rc, n)) if *rc == c => *n += 1,
                _ => {
                    if let Some((rc, n)) = run.take() {
                        out.push_str(&format!("{n}{rc}"));
                    }
                    run = Some((c, 1));
                }
            }
        }
        if let Some((rc, n)) = run {
            out.push_str(&format!("{n}{rc}"));
        }
        out
    }
}

/// Re-score an op list over the segment `a_seg` × `b_seg` it claims to
/// align (global semantics: ops must consume both slices exactly).
///
/// Returns `Err` describing the first inconsistency.
pub fn score_of_ops(
    a_seg: &[u8],
    b_seg: &[u8],
    ops: &[AlignOp],
    scheme: &ScoreScheme,
) -> Result<Score, String> {
    let mut i = 0usize;
    let mut j = 0usize;
    let mut score: i64 = 0;
    let mut prev: Option<AlignOp> = None;
    for (k, &op) in ops.iter().enumerate() {
        match op {
            AlignOp::Match | AlignOp::Mismatch => {
                let (Some(&ac), Some(&bc)) = (a_seg.get(i), b_seg.get(j)) else {
                    return Err(format!("op {k} overruns the segment"));
                };
                let is_match = ac == bc && ac < 4;
                if is_match != (op == AlignOp::Match) {
                    return Err(format!("op {k}: claims {op:?} but bases say otherwise"));
                }
                score += scheme.substitution(ac, bc) as i64;
                i += 1;
                j += 1;
            }
            AlignOp::Insert => {
                if j >= b_seg.len() {
                    return Err(format!("op {k} (Insert) overruns b"));
                }
                score -= scheme.gap_extend as i64;
                if prev != Some(AlignOp::Insert) {
                    score -= scheme.gap_open as i64;
                }
                j += 1;
            }
            AlignOp::Delete => {
                if i >= a_seg.len() {
                    return Err(format!("op {k} (Delete) overruns a"));
                }
                score -= scheme.gap_extend as i64;
                if prev != Some(AlignOp::Delete) {
                    score -= scheme.gap_open as i64;
                }
                i += 1;
            }
        }
        prev = Some(op);
    }
    if i != a_seg.len() || j != b_seg.len() {
        return Err(format!(
            "ops consume ({i}, {j}) of ({}, {})",
            a_seg.len(),
            b_seg.len()
        ));
    }
    Ok(score as Score)
}

/// Anchored best cell: like Smith-Waterman, but every path must start at
/// the matrix origin `(0, 0)` (global boundary conditions, no zero floor);
/// the result is the best cell of this "prefix-global" matrix.
///
/// Applied to reversed prefixes, this locates the *start* of an optimal
/// local alignment that ends exactly at the anchor — see the module docs.
pub fn anchored_best(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> BestCell {
    let n = b.len();
    let open_ext = scheme.gap_open + scheme.gap_extend;
    let ext = scheme.gap_extend;

    // Row 0: horizontal gap from the origin.
    let mut h_row: Vec<Score> = (0..=n)
        .map(|j| {
            if j == 0 {
                0
            } else {
                -(scheme.gap_open + j as Score * ext)
            }
        })
        .collect();
    let mut f_row = vec![NEG_INF; n + 1];
    let mut best = BestCell::new(0, 0, 0);

    for (k, &a_code) in a.iter().enumerate() {
        let i = k + 1;
        let mut h_diag = h_row[0];
        let h0 = -(scheme.gap_open + i as Score * ext);
        let mut h_left = h0;
        let mut e = NEG_INF;
        h_row[0] = h0;
        for (l, &b_code) in b.iter().enumerate() {
            let j = l + 1;
            let h_up = h_row[j];
            let f = (f_row[j] - ext).max(h_up - open_ext);
            e = (e - ext).max(h_left - open_ext);
            let mut h = h_diag + scheme.substitution(a_code, b_code);
            if e > h {
                h = e;
            }
            if f > h {
                h = f;
            }
            if h >= best.score {
                best.consider(h, i, j);
            }
            h_diag = h_up;
            h_left = h;
            h_row[j] = h;
            f_row[j] = f;
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Myers–Miller global alignment, linear space.
// ---------------------------------------------------------------------------

/// Maximal-score **global** alignment of `a` × `b` in `O(|b|)` memory.
///
/// Returns the op list; its score under [`score_of_ops`] equals the optimal
/// global affine-gap score (asserted against [`global_score`] in tests).
pub fn myers_miller(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> Vec<AlignOp> {
    let mut ops = Vec::with_capacity(a.len().max(b.len()));
    mm_rec(a, b, scheme.gap_open, scheme.gap_open, scheme, &mut ops);
    ops
}

/// Forward pass over rows of `a` × `b`; `tb` is the gap-open cost charged
/// to the delete run flowing down **column 0** (the column where a gap from
/// the caller's upper half would continue — runs elsewhere always pay the
/// full `open`, exactly as in Myers–Miller's original `diff`).
///
/// Returns `(cc, dd)` for the final row: `cc[j] = H(K, j)`,
/// `dd[j] = D(K, j)` (best score ending in a delete).
fn mm_forward(a: &[u8], b: &[u8], tb: Score, scheme: &ScoreScheme) -> (Vec<Score>, Vec<Score>) {
    let n = b.len();
    let open = scheme.gap_open;
    let ext = scheme.gap_extend;

    let mut cc: Vec<Score> = (0..=n)
        .map(|j| {
            if j == 0 {
                0
            } else {
                -(open + j as Score * ext)
            }
        })
        .collect();
    let mut dd = vec![NEG_INF; n + 1];

    for (k, &a_code) in a.iter().enumerate() {
        let i = k + 1;
        let mut h_diag = cc[0];
        let h0 = -(tb + i as Score * ext);
        cc[0] = h0;
        dd[0] = h0;
        let mut h_left = h0;
        let mut e = NEG_INF;
        for (l, &b_code) in b.iter().enumerate() {
            let j = l + 1;
            let h_up = cc[j];
            let d = (dd[j] - ext).max(h_up - open - ext);
            e = (e - ext).max(h_left - open - ext);
            let mut h = h_diag + scheme.substitution(a_code, b_code);
            if d > h {
                h = d;
            }
            if e > h {
                h = e;
            }
            h_diag = h_up;
            h_left = h;
            cc[j] = h;
            dd[j] = d;
        }
    }
    (cc, dd)
}

/// Backward pass: forward pass over reversed slices, with results re-indexed
/// to forward coordinates: `rr[j] = H'` of aligning `a` (all of it) with
/// `b[j..]`, and `ss[j]` its delete-ending variant. `te` plays the role of
/// `tb` for the bottom boundary.
fn mm_backward(a: &[u8], b: &[u8], te: Score, scheme: &ScoreScheme) -> (Vec<Score>, Vec<Score>) {
    let ar: Vec<u8> = a.iter().rev().copied().collect();
    let br: Vec<u8> = b.iter().rev().copied().collect();
    let (mut cc, mut dd) = mm_forward(&ar, &br, te, scheme);
    cc.reverse();
    dd.reverse();
    (cc, dd)
}

/// Recursive divide-and-conquer. `tb`/`te` are the gap-open costs charged
/// to delete runs touching the top/bottom boundary (0 when such a run
/// continues a gap already paid for by the caller).
fn mm_rec(a: &[u8], b: &[u8], tb: Score, te: Score, scheme: &ScoreScheme, ops: &mut Vec<AlignOp>) {
    let m = a.len();
    let n = b.len();
    let open = scheme.gap_open;

    if n == 0 {
        // Delete everything (single run, open = min(tb, te)).
        ops.extend(std::iter::repeat_n(AlignOp::Delete, m));
        return;
    }
    if m == 0 {
        ops.extend(std::iter::repeat_n(AlignOp::Insert, n));
        return;
    }
    if m == 1 {
        mm_base_single_row(a[0], b, tb, te, scheme, ops);
        return;
    }

    let imid = m / 2;
    let (cc, dd) = mm_forward(&a[..imid], b, tb, scheme);
    let (rr, ss) = mm_backward(&a[imid..], b, te, scheme);

    // Join: crossing row `imid` either at an H-state cell (type 1) or inside
    // a vertical gap that spans the boundary (type 2, +open compensates the
    // double-charged gap open).
    let mut best_j = 0usize;
    let mut best_type2 = false;
    let mut best_val = i64::MIN;
    for j in 0..=n {
        let t1 = cc[j] as i64 + rr[j] as i64;
        if t1 > best_val {
            best_val = t1;
            best_j = j;
            best_type2 = false;
        }
        let t2 = dd[j] as i64 + ss[j] as i64 + open as i64;
        if t2 > best_val {
            best_val = t2;
            best_j = j;
            best_type2 = true;
        }
    }

    if !best_type2 {
        mm_rec(&a[..imid], &b[..best_j], tb, open, scheme, ops);
        mm_rec(&a[imid..], &b[best_j..], open, te, scheme, ops);
    } else {
        // The crossing gap deletes a[imid-1] and a[imid] (0-based): emit
        // them explicitly and waive the adjoining opens in the halves.
        mm_rec(&a[..imid - 1], &b[..best_j], tb, 0, scheme, ops);
        ops.push(AlignOp::Delete);
        ops.push(AlignOp::Delete);
        mm_rec(&a[imid + 1..], &b[best_j..], 0, te, scheme, ops);
    }
}

/// Base case: a single row of `a` against all of `b` (`n ≥ 1`).
///
/// Either `a`'s base pairs with some `b[j]` (inserts around it), or `a`'s
/// base is deleted and all of `b` inserted.
fn mm_base_single_row(
    a_code: u8,
    b: &[u8],
    tb: Score,
    te: Score,
    scheme: &ScoreScheme,
    ops: &mut Vec<AlignOp>,
) {
    let n = b.len();
    let open = scheme.gap_open;
    let ext = scheme.gap_extend;

    // Option (b): delete a's single base and insert all of b. The delete
    // can sit at either end of the op run: placed first it can merge with a
    // caller gap at the top boundary (waiver `tb`), placed last with one at
    // the bottom boundary (waiver `te`) — take the cheaper.
    let mut best: i64 = -(tb.min(te) as i64 + ext as i64) - (open as i64 + n as i64 * ext as i64);
    let mut best_j = 0usize; // 0 = option (b)

    // Option (a): pair a with b[j] (1-based).
    for j in 1..=n {
        let before = if j > 1 {
            -(open as i64 + (j - 1) as i64 * ext as i64)
        } else {
            0
        };
        let after = if j < n {
            -(open as i64 + (n - j) as i64 * ext as i64)
        } else {
            0
        };
        let val = before + scheme.substitution(a_code, b[j - 1]) as i64 + after;
        if val > best {
            best = val;
            best_j = j;
        }
    }

    if best_j == 0 {
        // Emit the delete adjacent to the boundary whose waiver priced it,
        // so run-merging in the final op list realizes the waived open.
        if tb <= te {
            ops.push(AlignOp::Delete);
            ops.extend(std::iter::repeat_n(AlignOp::Insert, n));
        } else {
            ops.extend(std::iter::repeat_n(AlignOp::Insert, n));
            ops.push(AlignOp::Delete);
        }
    } else {
        ops.extend(std::iter::repeat_n(AlignOp::Insert, best_j - 1));
        ops.push(
            if scheme.substitution(a_code, b[best_j - 1]) == scheme.match_score
                && a_code == b[best_j - 1]
                && a_code < 4
            {
                AlignOp::Match
            } else {
                AlignOp::Mismatch
            },
        );
        ops.extend(std::iter::repeat_n(AlignOp::Insert, n - best_j));
    }
}

/// Optimal **global** affine-gap score (no traceback), linear memory.
/// Used to validate [`myers_miller`] outputs.
pub fn global_score(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> Score {
    if a.is_empty() && b.is_empty() {
        return 0;
    }
    let (cc, _) = mm_forward(a, b, scheme.gap_open, scheme);
    cc[b.len()]
}

/// Retrieve the optimal local alignment of `a` × `b` (CUDAlign stages 2–4
/// analogue). Linear memory throughout.
///
/// ```
/// use megasw_sw::traceback::local_align;
/// use megasw_sw::ScoreScheme;
/// use megasw_seq::DnaSeq;
///
/// let a = DnaSeq::from_str_unwrap("TTACGTACGTTT");
/// let aln = local_align(a.codes(), a.codes(), &ScoreScheme::cudalign());
/// assert_eq!(aln.score, 12);
/// assert_eq!(aln.cigar(), "12=");
/// assert_eq!(aln.identity(), 1.0);
/// ```
pub fn local_align(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> LocalAlignment {
    let best = rolling_best(a, b, scheme);
    if best.score <= 0 {
        return LocalAlignment::empty();
    }
    let (ie, je) = (best.i, best.j);

    // Reverse anchored scan to find the start point.
    let ar: Vec<u8> = a[..ie].iter().rev().copied().collect();
    let br: Vec<u8> = b[..je].iter().rev().copied().collect();
    let rev = anchored_best(&ar, &br, scheme);
    debug_assert_eq!(
        rev.score, best.score,
        "anchored reverse scan must reproduce the local score"
    );
    let is = ie - rev.i + 1;
    let js = je - rev.j + 1;

    let a_seg = &a[is - 1..ie];
    let b_seg = &b[js - 1..je];
    let ops = myers_miller(a_seg, b_seg, scheme);
    debug_assert_eq!(
        score_of_ops(a_seg, b_seg, &ops, scheme),
        Ok(best.score),
        "retrieved path must re-score to the DP score"
    );

    LocalAlignment {
        score: best.score,
        start_i: is,
        start_j: js,
        end_i: ie,
        end_j: je,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megasw_seq::{ChromosomeGenerator, DivergenceModel, GenerateConfig};

    fn codes(s: &str) -> Vec<u8> {
        megasw_seq::DnaSeq::from_str_unwrap(s).codes().to_vec()
    }

    /// O(mn) global alignment score by full DP — an independent oracle for
    /// `global_score` / `myers_miller`.
    fn global_score_quadratic(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> Score {
        let m = a.len();
        let n = b.len();
        let open_ext = scheme.gap_open + scheme.gap_extend;
        let ext = scheme.gap_extend;
        let mut h = vec![vec![NEG_INF; n + 1]; m + 1];
        let mut e = vec![vec![NEG_INF; n + 1]; m + 1];
        let mut f = vec![vec![NEG_INF; n + 1]; m + 1];
        h[0][0] = 0;
        for j in 1..=n {
            e[0][j] = -(scheme.gap_open + j as Score * ext);
            h[0][j] = e[0][j];
        }
        for i in 1..=m {
            f[i][0] = -(scheme.gap_open + i as Score * ext);
            h[i][0] = f[i][0];
        }
        for i in 1..=m {
            for j in 1..=n {
                e[i][j] = (e[i][j - 1] - ext).max(h[i][j - 1] - open_ext);
                f[i][j] = (f[i - 1][j] - ext).max(h[i - 1][j] - open_ext);
                h[i][j] = (h[i - 1][j - 1] + scheme.substitution(a[i - 1], b[j - 1]))
                    .max(e[i][j])
                    .max(f[i][j]);
            }
        }
        h[m][n]
    }

    #[test]
    fn global_score_matches_quadratic_oracle() {
        for seed in 0..6 {
            let scheme = if seed % 2 == 0 {
                ScoreScheme::cudalign()
            } else {
                ScoreScheme::lenient()
            };
            let a = ChromosomeGenerator::new(GenerateConfig::uniform(40, seed)).generate();
            let b = ChromosomeGenerator::new(GenerateConfig::uniform(55, seed + 9)).generate();
            assert_eq!(
                global_score(a.codes(), b.codes(), &scheme),
                global_score_quadratic(a.codes(), b.codes(), &scheme),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn global_score_edge_shapes() {
        let scheme = ScoreScheme::cudalign();
        let a = codes("ACGT");
        // Empty vs empty, empty vs something.
        assert_eq!(global_score(&[], &[], &scheme), 0);
        assert_eq!(global_score(&a, &[], &scheme), -(3 + 4 * 2));
        assert_eq!(global_score(&[], &a, &scheme), -(3 + 4 * 2));
        // Identity.
        assert_eq!(global_score(&a, &a, &scheme), 4);
    }

    #[test]
    fn myers_miller_rescores_to_global_optimum() {
        for seed in 0..10 {
            let scheme = if seed % 2 == 0 {
                ScoreScheme::cudalign()
            } else {
                ScoreScheme::lenient()
            };
            let la = 1 + (seed as usize * 13) % 70;
            let lb = 1 + (seed as usize * 29) % 90;
            let a = ChromosomeGenerator::new(GenerateConfig::uniform(la, seed)).generate();
            let b = ChromosomeGenerator::new(GenerateConfig::uniform(lb, seed + 40)).generate();
            let ops = myers_miller(a.codes(), b.codes(), &scheme);
            let rescored = score_of_ops(a.codes(), b.codes(), &ops, &scheme).unwrap();
            assert_eq!(
                rescored,
                global_score_quadratic(a.codes(), b.codes(), &scheme),
                "seed {seed} ({la}×{lb})"
            );
        }
    }

    #[test]
    fn myers_miller_on_gap_heavy_pairs() {
        // Force type-2 (mid-gap) splits: long a against short b.
        let scheme = ScoreScheme::lenient();
        let a = codes("ACGTACGTACGTACGTACGT");
        let b = codes("ACGT");
        let ops = myers_miller(&a, &b, &scheme);
        let rescored = score_of_ops(&a, &b, &ops, &scheme).unwrap();
        assert_eq!(rescored, global_score_quadratic(&a, &b, &scheme));
        // 16 deletes must appear.
        let dels = ops.iter().filter(|o| **o == AlignOp::Delete).count();
        assert_eq!(dels, 16);
    }

    #[test]
    fn local_align_recovers_planted_alignment() {
        let scheme = ScoreScheme::cudalign();
        // Plant a strong shared segment inside unrelated flanks.
        let core = ChromosomeGenerator::new(GenerateConfig::uniform(400, 3)).generate();
        let mut a = ChromosomeGenerator::new(GenerateConfig::uniform(150, 4)).generate();
        a.extend_codes(core.codes());
        a.extend_codes(
            ChromosomeGenerator::new(GenerateConfig::uniform(120, 5))
                .generate()
                .codes(),
        );
        let mut b = ChromosomeGenerator::new(GenerateConfig::uniform(80, 6)).generate();
        let (core_mut, _) = DivergenceModel::snp_only(7, 0.01).apply(&core);
        b.extend_codes(core_mut.codes());
        b.extend_codes(
            ChromosomeGenerator::new(GenerateConfig::uniform(60, 8))
                .generate()
                .codes(),
        );

        let aln = local_align(a.codes(), b.codes(), &scheme);
        let want = rolling_best(a.codes(), b.codes(), &scheme);
        assert_eq!(aln.score, want.score);
        assert_eq!((aln.end_i, aln.end_j), (want.i, want.j));
        // The alignment must sit over the planted core.
        assert!(
            aln.start_i >= 100 && aln.start_i <= 200,
            "start_i = {}",
            aln.start_i
        );
        assert!(aln.identity() > 0.95, "identity = {}", aln.identity());
        // Ops re-score exactly.
        let a_seg = &a.codes()[aln.start_i - 1..aln.end_i];
        let b_seg = &b.codes()[aln.start_j - 1..aln.end_j];
        assert_eq!(score_of_ops(a_seg, b_seg, &aln.ops, &scheme), Ok(aln.score));
    }

    #[test]
    fn local_align_of_unrelated_noise_is_small_and_valid() {
        let scheme = ScoreScheme::cudalign();
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(300, 11)).generate();
        let b = ChromosomeGenerator::new(GenerateConfig::uniform(300, 12)).generate();
        let aln = local_align(a.codes(), b.codes(), &scheme);
        assert_eq!(aln.score, rolling_best(a.codes(), b.codes(), &scheme).score);
        if !aln.is_empty() {
            let a_seg = &a.codes()[aln.start_i - 1..aln.end_i];
            let b_seg = &b.codes()[aln.start_j - 1..aln.end_j];
            assert_eq!(score_of_ops(a_seg, b_seg, &aln.ops, &scheme), Ok(aln.score));
        }
    }

    #[test]
    fn local_align_empty_cases() {
        let scheme = ScoreScheme::cudalign();
        assert_eq!(local_align(&[], &[], &scheme), LocalAlignment::empty());
        assert_eq!(
            local_align(&codes("A"), &codes("C"), &scheme),
            LocalAlignment::empty()
        );
        // All-N sequences can never score.
        assert_eq!(
            local_align(&codes("NNNN"), &codes("NNNN"), &scheme),
            LocalAlignment::empty()
        );
    }

    #[test]
    fn local_align_identical_sequences_is_all_matches() {
        let scheme = ScoreScheme::cudalign();
        let a = codes("ACGTACGTGGCC");
        let aln = local_align(&a, &a, &scheme);
        assert_eq!(aln.score, 12);
        assert_eq!(
            (aln.start_i, aln.start_j, aln.end_i, aln.end_j),
            (1, 1, 12, 12)
        );
        assert!(aln.ops.iter().all(|o| *o == AlignOp::Match));
        assert_eq!(aln.cigar(), "12=");
    }

    #[test]
    fn cigar_compresses_runs() {
        let aln = LocalAlignment {
            score: 0,
            start_i: 1,
            start_j: 1,
            end_i: 1,
            end_j: 1,
            ops: vec![
                AlignOp::Match,
                AlignOp::Match,
                AlignOp::Insert,
                AlignOp::Delete,
                AlignOp::Delete,
                AlignOp::Mismatch,
            ],
        };
        assert_eq!(aln.cigar(), "2=1I2D1X");
    }

    #[test]
    fn score_of_ops_rejects_inconsistencies() {
        let scheme = ScoreScheme::cudalign();
        let a = codes("AC");
        let b = codes("AC");
        // Wrong claim: Mismatch where bases match.
        assert!(score_of_ops(&a, &b, &[AlignOp::Mismatch, AlignOp::Match], &scheme).is_err());
        // Under-consumption.
        assert!(score_of_ops(&a, &b, &[AlignOp::Match], &scheme).is_err());
        // Overrun.
        assert!(score_of_ops(
            &a,
            &b,
            &[AlignOp::Match, AlignOp::Match, AlignOp::Insert],
            &scheme
        )
        .is_err());
    }

    #[test]
    fn anchored_best_equals_local_when_alignment_spans_origin() {
        let scheme = ScoreScheme::cudalign();
        let a = codes("ACGTACGT");
        let anchored = anchored_best(&a, &a, &scheme);
        assert_eq!(anchored.score, 8);
        assert_eq!((anchored.i, anchored.j), (8, 8));
    }

    #[test]
    fn local_align_with_indels_rescore() {
        let scheme = ScoreScheme::lenient();
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(2_000, 17)).generate();
        let (b, _) = DivergenceModel::test_scale(18).apply(&a);
        let aln = local_align(a.codes(), b.codes(), &scheme);
        assert!(aln.score > 0);
        let a_seg = &a.codes()[aln.start_i - 1..aln.end_i];
        let b_seg = &b.codes()[aln.start_j - 1..aln.end_j];
        assert_eq!(score_of_ops(a_seg, b_seg, &aln.ops, &scheme), Ok(aln.score));
        // Indel channel ⇒ the path should contain at least one gap op.
        assert!(aln
            .ops
            .iter()
            .any(|o| matches!(o, AlignOp::Insert | AlignOp::Delete)));
    }
}
