//! k-mer tooling: alignment-free similarity and dotplots.
//!
//! Before burning GPU-hours on a full Smith-Waterman pass, practitioners
//! screen chromosome pairs with alignment-free statistics and eyeball a
//! dotplot of shared k-mers. This module provides both: a [`KmerIndex`]
//! over 2-bit packed k-mers (k ≤ 32), Jaccard similarity between k-mer
//! sets, a diagonal-offset histogram that *estimates the alignment band*
//! (feeding [`megasw_sw::banded`]-style banding), and an ASCII dotplot.

use crate::dna::DnaSeq;
use std::collections::HashMap;

/// An index of every concrete k-mer of one sequence (k-mers containing `N`
/// are skipped, mirroring how aligners seed).
#[derive(Debug, Clone)]
pub struct KmerIndex {
    k: usize,
    /// Packed k-mer → positions (0-based start).
    map: HashMap<u64, Vec<u32>>,
    total: usize,
}

impl KmerIndex {
    /// Build the index. `k` must be within `1..=32`.
    pub fn build(seq: &DnaSeq, k: usize) -> KmerIndex {
        assert!((1..=32).contains(&k), "k must be within 1..=32");
        let codes = seq.codes();
        let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut total = 0usize;

        // Rolling 2-bit pack; any N resets the window.
        let mask: u64 = if k == 32 {
            u64::MAX
        } else {
            (1u64 << (2 * k)) - 1
        };
        let mut packed: u64 = 0;
        let mut valid = 0usize; // consecutive concrete bases ending here
        for (pos, &c) in codes.iter().enumerate() {
            if c >= 4 {
                valid = 0;
                continue;
            }
            packed = ((packed << 2) | c as u64) & mask;
            valid += 1;
            if valid >= k {
                let start = pos + 1 - k;
                map.entry(packed).or_default().push(start as u32);
                total += 1;
            }
        }
        KmerIndex { k, map, total }
    }

    /// k used to build the index.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of indexed k-mer occurrences.
    pub fn total_kmers(&self) -> usize {
        self.total
    }

    /// Number of distinct k-mers.
    pub fn distinct_kmers(&self) -> usize {
        self.map.len()
    }

    /// Positions of a packed k-mer (empty if absent).
    pub fn positions(&self, packed: u64) -> &[u32] {
        self.map.get(&packed).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate `(packed, positions)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u32])> {
        self.map.iter().map(|(k, v)| (*k, v.as_slice()))
    }
}

/// Jaccard similarity of the two sequences' distinct k-mer sets.
///
/// ≈1 for near-identical sequences, ≈0 for unrelated ones; the classic
/// sketch statistic (computed exactly here — no MinHash needed at these
/// sizes).
///
/// ```
/// use megasw_seq::kmer::jaccard;
/// use megasw_seq::DnaSeq;
///
/// let a = DnaSeq::from_str_unwrap("ACGTACGTGGCCAATT");
/// assert_eq!(jaccard(&a, &a, 8), 1.0);
/// let unrelated = DnaSeq::from_str_unwrap("TTTTTTTTTTTTTTTT");
/// assert_eq!(jaccard(&a, &unrelated, 8), 0.0);
/// ```
pub fn jaccard(a: &DnaSeq, b: &DnaSeq, k: usize) -> f64 {
    let ia = KmerIndex::build(a, k);
    let ib = KmerIndex::build(b, k);
    let (small, large) = if ia.distinct_kmers() <= ib.distinct_kmers() {
        (&ia, &ib)
    } else {
        (&ib, &ia)
    };
    let shared = small
        .iter()
        .filter(|(kmer, _)| !large.positions(*kmer).is_empty())
        .count();
    let union = ia.distinct_kmers() + ib.distinct_kmers() - shared;
    if union == 0 {
        0.0
    } else {
        shared as f64 / union as f64
    }
}

/// Histogram of diagonal offsets `(pos_b − pos_a)` over shared k-mers,
/// used to locate the alignment corridor. Returns `(offset, count)` pairs
/// sorted by descending count. `max_per_kmer` bounds the positions
/// considered per k-mer so repeats don't blow the product up.
pub fn diagonal_histogram(
    a: &DnaSeq,
    b: &DnaSeq,
    k: usize,
    max_per_kmer: usize,
) -> Vec<(i64, usize)> {
    let ia = KmerIndex::build(a, k);
    let ib = KmerIndex::build(b, k);
    let mut hist: HashMap<i64, usize> = HashMap::new();
    for (kmer, pos_a) in ia.iter() {
        let pos_b = ib.positions(kmer);
        if pos_b.is_empty() {
            continue;
        }
        for &pa in pos_a.iter().take(max_per_kmer) {
            for &pb in pos_b.iter().take(max_per_kmer) {
                *hist.entry(pb as i64 - pa as i64).or_default() += 1;
            }
        }
    }
    let mut out: Vec<(i64, usize)> = hist.into_iter().collect();
    out.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
    out
}

/// Estimate a band `(lo, hi)` of diagonals that covers the bulk of the
/// homology: the smallest offset window containing `coverage` (0–1] of the
/// shared-k-mer mass, padded by `pad` diagonals each side.
///
/// Returns `None` when the sequences share no k-mers at all.
pub fn estimate_band(
    a: &DnaSeq,
    b: &DnaSeq,
    k: usize,
    coverage: f64,
    pad: usize,
) -> Option<(i64, i64)> {
    let mut hist = diagonal_histogram(a, b, k, 4);
    if hist.is_empty() {
        return None;
    }
    hist.sort_by_key(|&(off, _)| off);
    let total: usize = hist.iter().map(|&(_, c)| c).sum();
    let want = ((total as f64) * coverage.clamp(0.0, 1.0)).ceil() as usize;

    // Two-pointer smallest window with ≥ want mass.
    let mut best: Option<(i64, i64)> = None;
    let mut acc = 0usize;
    let mut lo = 0usize;
    for hi in 0..hist.len() {
        acc += hist[hi].1;
        while acc - hist[lo].1 >= want {
            acc -= hist[lo].1;
            lo += 1;
        }
        if acc >= want {
            let span = (hist[lo].0, hist[hi].0);
            let better = match best {
                None => true,
                Some((blo, bhi)) => span.1 - span.0 < bhi - blo,
            };
            if better {
                best = Some(span);
            }
        }
    }
    best.map(|(lo, hi)| (lo - pad as i64, hi + pad as i64))
}

/// ASCII dotplot: rows = windows of `a`, columns = windows of `b`; a cell
/// darkens with the number of shared k-mers between its windows
/// (` .:*#` ramp).
pub fn dotplot(a: &DnaSeq, b: &DnaSeq, k: usize, width: usize, height: usize) -> String {
    let width = width.clamp(2, 400);
    let height = height.clamp(2, 400);
    if a.is_empty() || b.is_empty() {
        return String::new();
    }
    let ia = KmerIndex::build(a, k);
    let ib = KmerIndex::build(b, k);
    let mut counts = vec![vec![0usize; width]; height];
    for (kmer, pos_a) in ia.iter() {
        let pos_b = ib.positions(kmer);
        if pos_b.is_empty() {
            continue;
        }
        for &pa in pos_a.iter().take(4) {
            let row = (pa as usize * height) / a.len().max(1);
            for &pb in pos_b.iter().take(4) {
                let col = (pb as usize * width) / b.len().max(1);
                counts[row.min(height - 1)][col.min(width - 1)] += 1;
            }
        }
    }
    let max = counts
        .iter()
        .flat_map(|r| r.iter())
        .copied()
        .max()
        .unwrap_or(0)
        .max(1);
    let ramp = [' ', '.', ':', '*', '#'];
    let mut out = String::with_capacity(height * (width + 1));
    for row in &counts {
        for &c in row {
            let level = (c * (ramp.len() - 1)).div_ceil(max);
            out.push(ramp[level.min(ramp.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{ChromosomeGenerator, GenerateConfig};
    use crate::mutate::DivergenceModel;

    fn seq(s: &str) -> DnaSeq {
        DnaSeq::from_str_unwrap(s)
    }

    #[test]
    fn index_counts_kmers() {
        let s = seq("ACGTACGT");
        let idx = KmerIndex::build(&s, 4);
        assert_eq!(idx.total_kmers(), 5);
        // ACGT occurs at 0 and 4.
        let packed = 0b00_01_10_11; // A C G T
        assert_eq!(idx.positions(packed), &[0, 4]);
        assert_eq!(idx.k(), 4);
    }

    #[test]
    fn n_breaks_kmers() {
        let s = seq("ACGNACG");
        let idx = KmerIndex::build(&s, 3);
        // Only ACG (twice); windows crossing N are skipped.
        assert_eq!(idx.total_kmers(), 2);
        assert_eq!(idx.distinct_kmers(), 1);
    }

    #[test]
    fn jaccard_extremes() {
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(5_000, 1)).generate();
        assert!((jaccard(&a, &a, 16) - 1.0).abs() < 1e-12);
        let b = ChromosomeGenerator::new(GenerateConfig::uniform(5_000, 2)).generate();
        assert!(jaccard(&a, &b, 16) < 0.01);
    }

    #[test]
    fn jaccard_tracks_divergence() {
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(20_000, 3)).generate();
        let (close, _) = DivergenceModel::snp_only(4, 0.01).apply(&a);
        let (far, _) = DivergenceModel::snp_only(5, 0.10).apply(&a);
        let j_close = jaccard(&a, &close, 16);
        let j_far = jaccard(&a, &far, 16);
        assert!(j_close > j_far, "{j_close} vs {j_far}");
        assert!(j_close > 0.6);
    }

    #[test]
    fn diagonal_histogram_peaks_at_known_shift() {
        // b = a shifted right by 100 bases.
        let core = ChromosomeGenerator::new(GenerateConfig::uniform(3_000, 7)).generate();
        let mut b = ChromosomeGenerator::new(GenerateConfig::uniform(100, 8)).generate();
        b.extend_codes(core.codes());
        let hist = diagonal_histogram(&core, &b, 16, 4);
        assert_eq!(hist[0].0, 100, "top offset should be the planted shift");
    }

    #[test]
    fn estimate_band_covers_planted_shift() {
        let core = ChromosomeGenerator::new(GenerateConfig::uniform(3_000, 9)).generate();
        let mut b = ChromosomeGenerator::new(GenerateConfig::uniform(250, 10)).generate();
        b.extend_codes(core.codes());
        let (lo, hi) = estimate_band(&core, &b, 16, 0.9, 16).unwrap();
        assert!(
            lo <= 250 && 250 <= hi,
            "band ({lo}, {hi}) misses offset 250"
        );
        assert!(hi - lo < 600, "band ({lo}, {hi}) too wide");
    }

    #[test]
    fn estimate_band_none_for_unrelated() {
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(500, 11)).generate();
        let b = DnaSeq::from_codes(vec![4; 500]).unwrap(); // all N
        assert_eq!(estimate_band(&a, &b, 16, 0.9, 8), None);
    }

    #[test]
    fn dotplot_shows_diagonal_for_self_comparison() {
        let a = ChromosomeGenerator::new(GenerateConfig::uniform(4_000, 12)).generate();
        let plot = dotplot(&a, &a, 16, 20, 20);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 20);
        // The main diagonal should be the darkest cells.
        for (r, line) in lines.iter().enumerate() {
            let c = line.chars().nth(r).unwrap();
            assert!(
                c == '#' || c == '*',
                "diagonal cell ({r},{r}) = {c:?}\n{plot}"
            );
        }
    }

    #[test]
    fn dotplot_empty_inputs() {
        let a = DnaSeq::new();
        let b = seq("ACGT");
        assert_eq!(dotplot(&a, &b, 4, 10, 10), "");
    }
}
