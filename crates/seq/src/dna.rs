//! Owned DNA sequence types.
//!
//! [`DnaSeq`] stores one base per byte (code `0..=4`) — the layout the DP
//! kernels read — while [`PackedDna`] stores concrete bases at 2 bits each
//! with an exception list for `N` runs, the layout used for "device memory"
//! accounting and compact storage.

use crate::alphabet::{complement_code, Nucleotide, N_CODE};

/// An owned DNA sequence, one base code per byte.
///
/// The backing buffer contains only valid codes (`0..=4`); this invariant is
/// maintained by every constructor, so the DP kernels can index scoring
/// tables without bounds checks on the *value*.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct DnaSeq {
    codes: Vec<u8>,
}

impl DnaSeq {
    /// Empty sequence.
    pub fn new() -> Self {
        DnaSeq { codes: Vec::new() }
    }

    /// Create with pre-allocated capacity (in bases).
    pub fn with_capacity(cap: usize) -> Self {
        DnaSeq {
            codes: Vec::with_capacity(cap),
        }
    }

    /// Build from raw codes. Returns `None` if any code is `> 4`.
    pub fn from_codes(codes: Vec<u8>) -> Option<Self> {
        if codes.iter().all(|&c| c <= N_CODE) {
            Some(DnaSeq { codes })
        } else {
            None
        }
    }

    /// Build from an ASCII byte string such as `b"ACGTN"`.
    ///
    /// Returns `Err(position)` of the first invalid character.
    pub fn from_ascii(text: &[u8]) -> Result<Self, usize> {
        let mut codes = Vec::with_capacity(text.len());
        for (i, &c) in text.iter().enumerate() {
            match Nucleotide::from_ascii(c) {
                Some(n) => codes.push(n.code()),
                None => return Err(i),
            }
        }
        Ok(DnaSeq { codes })
    }

    /// Convenience constructor from a `&str` (panics on invalid characters;
    /// intended for tests and examples).
    pub fn from_str_unwrap(s: &str) -> Self {
        Self::from_ascii(s.as_bytes())
            .unwrap_or_else(|i| panic!("invalid DNA character at position {i} in {s:?}"))
    }

    /// Number of bases.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Is the sequence empty?
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The raw code slice (`0..=4` per base) consumed by the DP kernels.
    #[inline(always)]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Append one base.
    #[inline]
    pub fn push(&mut self, n: Nucleotide) {
        self.codes.push(n.code());
    }

    /// Append raw codes (debug-asserts validity).
    pub fn extend_codes(&mut self, codes: &[u8]) {
        debug_assert!(codes.iter().all(|&c| c <= N_CODE));
        self.codes.extend_from_slice(codes);
    }

    /// Base at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<Nucleotide> {
        self.codes
            .get(i)
            .map(|&c| Nucleotide::from_code(c).expect("DnaSeq invariant: codes are always valid"))
    }

    /// Sub-sequence `[start, end)` as a new owned sequence.
    pub fn slice(&self, start: usize, end: usize) -> DnaSeq {
        DnaSeq {
            codes: self.codes[start..end].to_vec(),
        }
    }

    /// Reverse complement (the opposite strand read 5'→3').
    pub fn reverse_complement(&self) -> DnaSeq {
        let codes = self
            .codes
            .iter()
            .rev()
            .map(|&c| complement_code(c))
            .collect();
        DnaSeq { codes }
    }

    /// Reverse (without complement). Used by Myers–Miller, which aligns a
    /// reversed suffix against a reversed suffix.
    pub fn reversed(&self) -> DnaSeq {
        let mut codes = self.codes.clone();
        codes.reverse();
        DnaSeq { codes }
    }

    /// Iterate over bases.
    pub fn iter(&self) -> impl Iterator<Item = Nucleotide> + '_ {
        self.codes
            .iter()
            .map(|&c| Nucleotide::from_code(c).expect("DnaSeq invariant"))
    }

    /// Render as an ASCII string (allocates; for small sequences/tests).
    pub fn to_ascii_string(&self) -> String {
        self.iter().map(|n| n.to_ascii() as char).collect()
    }

    /// Count of `N` bases.
    pub fn n_count(&self) -> usize {
        self.codes.iter().filter(|&&c| c == N_CODE).count()
    }

    /// GC fraction among concrete bases (0.0 if no concrete bases).
    pub fn gc_fraction(&self) -> f64 {
        let mut gc = 0usize;
        let mut concrete = 0usize;
        for &c in &self.codes {
            if c < N_CODE {
                concrete += 1;
                if c == Nucleotide::C.code() || c == Nucleotide::G.code() {
                    gc += 1;
                }
            }
        }
        if concrete == 0 {
            0.0
        } else {
            gc as f64 / concrete as f64
        }
    }
}

impl std::fmt::Debug for DnaSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const PREVIEW: usize = 32;
        if self.len() <= PREVIEW {
            write!(f, "DnaSeq({})", self.to_ascii_string())
        } else {
            write!(
                f,
                "DnaSeq({}… len={})",
                self.slice(0, PREVIEW).to_ascii_string(),
                self.len()
            )
        }
    }
}

impl FromIterator<Nucleotide> for DnaSeq {
    fn from_iter<T: IntoIterator<Item = Nucleotide>>(iter: T) -> Self {
        DnaSeq {
            codes: iter.into_iter().map(|n| n.code()).collect(),
        }
    }
}

/// 2-bit packed DNA with an explicit list of `N` runs.
///
/// Concrete bases are stored 4 per byte. `N` positions are recorded as
/// `(start, len)` runs — real chromosomes contain a small number of long `N`
/// runs (assembly gaps), so this is far more compact than a per-base mask.
/// This is the representation whose footprint we charge against simulated
/// device memory in `megasw-gpusim`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PackedDna {
    len: usize,
    /// 2-bit codes, 4 bases per byte, little-endian within the byte
    /// (base i occupies bits `(i % 4) * 2 ..`).
    words: Vec<u8>,
    /// Sorted, non-overlapping, non-adjacent `(start, len)` runs of `N`.
    n_runs: Vec<(usize, usize)>,
}

impl PackedDna {
    /// Pack a [`DnaSeq`].
    pub fn pack(seq: &DnaSeq) -> PackedDna {
        let len = seq.len();
        let mut words = vec![0u8; len.div_ceil(4)];
        let mut n_runs: Vec<(usize, usize)> = Vec::new();
        for (i, &code) in seq.codes().iter().enumerate() {
            let two_bit = if code == N_CODE {
                match n_runs.last_mut() {
                    Some((start, rl)) if *start + *rl == i => *rl += 1,
                    _ => n_runs.push((i, 1)),
                }
                0 // N packs as A; the run list restores it on unpack.
            } else {
                code
            };
            words[i / 4] |= two_bit << ((i % 4) * 2);
        }
        PackedDna { len, words, n_runs }
    }

    /// Unpack to a [`DnaSeq`].
    pub fn unpack(&self) -> DnaSeq {
        let mut codes = Vec::with_capacity(self.len);
        for i in 0..self.len {
            codes.push((self.words[i / 4] >> ((i % 4) * 2)) & 0b11);
        }
        for &(start, rl) in &self.n_runs {
            for c in codes.iter_mut().skip(start).take(rl) {
                *c = N_CODE;
            }
        }
        DnaSeq { codes }
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the sequence empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Storage footprint in bytes (what a device allocation would charge).
    pub fn packed_bytes(&self) -> usize {
        self.words.len() + self.n_runs.len() * std::mem::size_of::<(usize, usize)>()
    }

    /// Base at position `i` (slow path; for spot checks).
    pub fn get(&self, i: usize) -> Option<Nucleotide> {
        if i >= self.len {
            return None;
        }
        for &(start, rl) in &self.n_runs {
            if i >= start && i < start + rl {
                return Some(Nucleotide::N);
            }
        }
        let code = (self.words[i / 4] >> ((i % 4) * 2)) & 0b11;
        Nucleotide::from_code(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ascii_and_back() {
        let s = DnaSeq::from_ascii(b"ACGTNacgtn").unwrap();
        assert_eq!(s.to_ascii_string(), "ACGTNACGTN");
        assert_eq!(s.len(), 10);
        assert_eq!(s.n_count(), 2);
    }

    #[test]
    fn from_ascii_reports_error_position() {
        assert_eq!(DnaSeq::from_ascii(b"ACGX"), Err(3));
        assert_eq!(DnaSeq::from_ascii(b"-ACG"), Err(0));
    }

    #[test]
    fn from_codes_validates() {
        assert!(DnaSeq::from_codes(vec![0, 1, 2, 3, 4]).is_some());
        assert!(DnaSeq::from_codes(vec![0, 5]).is_none());
    }

    #[test]
    fn reverse_complement_small() {
        let s = DnaSeq::from_str_unwrap("AACGTN");
        assert_eq!(s.reverse_complement().to_ascii_string(), "NACGTT");
    }

    #[test]
    fn reverse_complement_is_involution() {
        let s = DnaSeq::from_str_unwrap("ACGTTGCANNNGAT");
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn reversed_reverses() {
        let s = DnaSeq::from_str_unwrap("ACGTN");
        assert_eq!(s.reversed().to_ascii_string(), "NTGCA");
        assert_eq!(s.reversed().reversed(), s);
    }

    #[test]
    fn gc_fraction_ignores_n() {
        let s = DnaSeq::from_str_unwrap("GCGCNNNN");
        assert!((s.gc_fraction() - 1.0).abs() < 1e-12);
        let t = DnaSeq::from_str_unwrap("ATGC");
        assert!((t.gc_fraction() - 0.5).abs() < 1e-12);
        let all_n = DnaSeq::from_str_unwrap("NNN");
        assert_eq!(all_n.gc_fraction(), 0.0);
    }

    #[test]
    fn slicing() {
        let s = DnaSeq::from_str_unwrap("ACGTACGT");
        assert_eq!(s.slice(2, 6).to_ascii_string(), "GTAC");
        assert_eq!(s.slice(0, 0).len(), 0);
    }

    #[test]
    fn pack_roundtrip_no_n() {
        let s = DnaSeq::from_str_unwrap("ACGTACGTACG"); // length not multiple of 4
        let p = PackedDna::pack(&s);
        assert_eq!(p.unpack(), s);
        assert_eq!(p.len(), 11);
    }

    #[test]
    fn pack_roundtrip_with_n_runs() {
        let s = DnaSeq::from_str_unwrap("NNACGTNNNNTACGNN");
        let p = PackedDna::pack(&s);
        assert_eq!(p.unpack(), s);
        // 3 N runs: [0,2), [6,10), [14,16)
        assert_eq!(p.n_runs, vec![(0, 2), (6, 4), (14, 2)]);
    }

    #[test]
    fn pack_empty() {
        let s = DnaSeq::new();
        let p = PackedDna::pack(&s);
        assert!(p.is_empty());
        assert_eq!(p.unpack(), s);
    }

    #[test]
    fn packed_get_matches_unpacked() {
        let s = DnaSeq::from_str_unwrap("ANCGTNNACGTA");
        let p = PackedDna::pack(&s);
        for i in 0..s.len() {
            assert_eq!(p.get(i), s.get(i), "position {i}");
        }
        assert_eq!(p.get(s.len()), None);
    }

    #[test]
    fn packed_is_four_times_smaller() {
        let s = DnaSeq::from_codes(vec![0; 4000]).unwrap();
        let p = PackedDna::pack(&s);
        assert_eq!(p.packed_bytes(), 1000);
    }

    #[test]
    fn debug_preview_truncates() {
        let long = DnaSeq::from_codes(vec![0; 100]).unwrap();
        let dbg = format!("{long:?}");
        assert!(dbg.contains("len=100"));
    }
}
