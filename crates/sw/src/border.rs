//! Border vectors exchanged between blocks (and, in the multi-GPU pipeline,
//! between devices).
//!
//! A block spanning DP rows `[i0, i1)` and columns `[j0, j1)` (1-based, with
//! row 0 / column 0 the zero boundary) consumes:
//!
//! * its **top border** — `H` and `F` of row `i0 − 1` over columns
//!   `j0 − 1 ..= j1 − 1`;
//! * its **left border** — `H` and `E` of column `j0 − 1` over rows
//!   `i0 − 1 ..= i1 − 1`;
//!
//! and produces the matching **bottom border** (row `i1 − 1`) and **right
//! border** (column `j1 − 1`). Both borders carry the shared corner element
//! at index 0, so the bottom border of one block *is* the top border of the
//! block below it, with no separate corner plumbing. This composition rule
//! is what lets a slab boundary be streamed across GPUs one block-row at a
//! time — the paper's fine-grain border communication.
//!
//! The auxiliary lane differs per direction: a row carries `F` (vertical gap
//! state, needed by the block below), a column carries `E` (horizontal gap
//! state, needed by the block to the right). Index 0 of the auxiliary lane
//! is never read and is kept at [`NEG_INF`].

use crate::cell::{Score, NEG_INF};
use crate::scoring::ScoreScheme;

/// A horizontal border: `H` and `F` along one matrix row segment.
///
/// `h[0]` is the corner element (column `j0 − 1`); `h[k]` for `k ≥ 1` is
/// column `j0 − 1 + k`. Length is `width + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowBorder {
    pub h: Vec<Score>,
    pub f: Vec<Score>,
}

impl RowBorder {
    /// The all-zero boundary (matrix row 0): `H = 0`, `F = −∞`.
    pub fn zero(width: usize) -> RowBorder {
        RowBorder {
            h: vec![0; width + 1],
            f: vec![NEG_INF; width + 1],
        }
    }

    /// The *anchored* boundary for matrix row 0 starting at global DP
    /// column `col_offset` (1-based): `H[0][j] = −(open + j·extend)` for
    /// `j ≥ 1`, `H[0][0] = 0` — a horizontal gap from the origin. Used by
    /// the anchored kernels (no zero floor).
    pub fn anchored(width: usize, col_offset: usize, scheme: &ScoreScheme) -> RowBorder {
        let h = (0..=width)
            .map(|l| {
                let j = col_offset - 1 + l;
                if j == 0 {
                    0
                } else {
                    -(scheme.gap_open + j as Score * scheme.gap_extend)
                }
            })
            .collect();
        RowBorder {
            h,
            f: vec![NEG_INF; width + 1],
        }
    }

    /// Number of in-block columns covered (excludes the corner).
    pub fn width(&self) -> usize {
        debug_assert_eq!(self.h.len(), self.f.len());
        self.h.len() - 1
    }

    /// Maximum `H` value on the border (corner included).
    pub fn max_h(&self) -> Score {
        self.h.iter().copied().max().unwrap_or(0)
    }

    /// Bytes this border occupies when transferred between devices.
    pub fn transfer_bytes(&self) -> usize {
        (self.h.len() + self.f.len()) * std::mem::size_of::<Score>()
    }
}

/// A vertical border: `H` and `E` along one matrix column segment.
///
/// `h[0]` is the corner element (row `i0 − 1`); `h[k]` for `k ≥ 1` is row
/// `i0 − 1 + k`. Length is `height + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColBorder {
    pub h: Vec<Score>,
    pub e: Vec<Score>,
}

impl ColBorder {
    /// The all-zero boundary (matrix column 0): `H = 0`, `E = −∞`.
    pub fn zero(height: usize) -> ColBorder {
        ColBorder {
            h: vec![0; height + 1],
            e: vec![NEG_INF; height + 1],
        }
    }

    /// The *anchored* boundary for matrix column 0 starting at global DP
    /// row `row_offset` (1-based): `H[i][0] = −(open + i·extend)` for
    /// `i ≥ 1`, `H[0][0] = 0` — a vertical gap from the origin.
    pub fn anchored(height: usize, row_offset: usize, scheme: &ScoreScheme) -> ColBorder {
        let h = (0..=height)
            .map(|k| {
                let i = row_offset - 1 + k;
                if i == 0 {
                    0
                } else {
                    -(scheme.gap_open + i as Score * scheme.gap_extend)
                }
            })
            .collect();
        ColBorder {
            h,
            e: vec![NEG_INF; height + 1],
        }
    }

    /// Number of in-block rows covered (excludes the corner).
    pub fn height(&self) -> usize {
        debug_assert_eq!(self.h.len(), self.e.len());
        self.h.len() - 1
    }

    /// Maximum `H` value on the border (corner included).
    pub fn max_h(&self) -> Score {
        self.h.iter().copied().max().unwrap_or(0)
    }

    /// Bytes this border occupies when transferred between devices.
    ///
    /// This is the paper's inter-GPU payload: each cell of a column border
    /// contributes `H` and `E` (8 bytes at `i32`).
    pub fn transfer_bytes(&self) -> usize {
        (self.h.len() + self.e.len()) * std::mem::size_of::<Score>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_row_border_shape() {
        let b = RowBorder::zero(8);
        assert_eq!(b.width(), 8);
        assert_eq!(b.h, vec![0; 9]);
        assert!(b.f.iter().all(|&f| f == NEG_INF));
        assert_eq!(b.max_h(), 0);
    }

    #[test]
    fn zero_col_border_shape() {
        let b = ColBorder::zero(5);
        assert_eq!(b.height(), 5);
        assert_eq!(b.h, vec![0; 6]);
        assert!(b.e.iter().all(|&e| e == NEG_INF));
    }

    #[test]
    fn transfer_bytes_counts_both_lanes() {
        let b = ColBorder::zero(100);
        assert_eq!(b.transfer_bytes(), 2 * 101 * 4);
        let r = RowBorder::zero(64);
        assert_eq!(r.transfer_bytes(), 2 * 65 * 4);
    }

    #[test]
    fn max_h_finds_maximum() {
        let mut b = RowBorder::zero(3);
        b.h = vec![0, 5, 2, 7];
        assert_eq!(b.max_h(), 7);
    }

    #[test]
    fn zero_width_border_is_just_a_corner() {
        let b = RowBorder::zero(0);
        assert_eq!(b.width(), 0);
        assert_eq!(b.h.len(), 1);
    }
}
