#!/usr/bin/env bash
# Offline CI gate for the megasw workspace: release build, full test
# suite, a warning-free clippy pass, formatting, and a bench-artifact
# smoke pipeline. No network access required — the workspace has zero
# external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Perf-regression artifact smoke: produce a 1-sample artifact, check it
# parses against the schema, and shape-check it against the committed
# baseline (absolute GCUPS are host-dependent, so CI compares shapes
# only). Also prove bench-diff's exit-code contract both ways: zero on
# self-compare, nonzero on the synthetic-regression fixture.
MEGASW_BENCH_SAMPLES=1 ./target/release/bench-artifact BENCH_ci.json
./target/release/bench-diff BENCH_ci.json BENCH_ci.json
./target/release/bench-diff --shape-only \
    crates/bench/fixtures/BENCH_baseline.json BENCH_ci.json
rc=0
./target/release/bench-diff \
    crates/bench/fixtures/BENCH_baseline.json \
    crates/bench/fixtures/BENCH_regressed.json || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "ci: FAIL — bench-diff exit $rc on regressed fixture (want 1)" >&2
    exit 1
fi
rm -f BENCH_ci.json

echo "ci: all gates passed"
