//! Chrome `trace_event` JSON export and structural validation.
//!
//! The emitted document uses the JSON-object flavour of the trace-event
//! format — `{"traceEvents": [...]}` — with complete (`"ph":"X"`) events
//! whose `ts`/`dur` are microseconds (fractional part keeps nanosecond
//! resolution). Load the file in `chrome://tracing` or drop it onto
//! <https://ui.perfetto.dev>: one lane (`tid`) per device, plus a `host`
//! lane for traceback work.
//!
//! Each device lane also gets a **counter track** (`"ph":"C"` events named
//! `stall d<N> (ns)`): cumulative nanoseconds of compute / wait-input /
//! wait-output time derived from that device's spans, sampled at every
//! span end — so the stall-attribution story is visible as stacked area
//! charts alongside the spans themselves.
//!
//! [`validate`] is the other half of the contract: it re-parses a trace
//! with the crate's own JSON parser and checks the structure the golden
//! tests rely on (parseable, complete and counter events only,
//! non-negative durations, per-lane monotonic timestamps).

use crate::json::{self, Value};
use crate::span::{ObsKind, ObsSpan};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// The single `pid` used for all lanes (one process = one run).
const PID: u64 = 1;

/// Lane id (`tid`) used for host-side spans (`device: None`).
pub fn host_lane(device_count: usize) -> u64 {
    device_count as u64
}

/// Render spans as a Chrome trace-event JSON document.
///
/// `device_names[d]` labels the lane of device `d`; host-side spans go to
/// an extra `host` lane after the last device. Spans are sorted per lane so
/// timestamps are monotonic within each `tid`.
pub fn chrome_trace(spans: &[ObsSpan], device_names: &[String]) -> String {
    let host = host_lane(device_names.len());
    let mut sorted: Vec<&ObsSpan> = spans.iter().collect();
    sorted.sort_by_key(|s| (lane_of(s, host), s.start_ns, s.end_ns));

    let mut out = String::with_capacity(128 + sorted.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push_event = |out: &mut String, body: &str| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(body);
    };

    // Metadata: process name + one named lane per device (+ host).
    push_event(
        &mut out,
        &format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\
             \"args\":{{\"name\":\"megasw\"}}}}"
        ),
    );
    for (d, name) in device_names.iter().enumerate() {
        push_event(
            &mut out,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{d},\
                 \"args\":{{\"name\":\"GPU{d} {}\"}}}}",
                json::escape(name)
            ),
        );
        push_event(
            &mut out,
            &format!(
                "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{d},\
                 \"args\":{{\"sort_index\":{d}}}}}"
            ),
        );
    }
    if sorted.iter().any(|s| s.device.is_none()) {
        push_event(
            &mut out,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{host},\
                 \"args\":{{\"name\":\"host\"}}}}"
            ),
        );
    }

    for span in &sorted {
        let tid = lane_of(span, host);
        let ts = span.start_ns as f64 / 1_000.0;
        let dur = span.duration_ns() as f64 / 1_000.0;
        let kind = span.kind.name();
        let name = match span.block_row {
            Some(r) => format!("{kind} r{r}"),
            None => kind.to_string(),
        };
        let mut body = format!(
            "{{\"name\":\"{name}\",\"cat\":\"{kind}\",\"ph\":\"X\",\
             \"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":{PID},\"tid\":{tid},\"args\":{{"
        );
        match span.device {
            Some(d) => {
                let _ = write!(body, "\"device\":{d}");
            }
            None => body.push_str("\"device\":\"host\""),
        }
        if let Some(r) = span.block_row {
            let _ = write!(body, ",\"block_row\":{r}");
        }
        body.push_str("}}");
        push_event(&mut out, &body);
    }

    // Counter tracks: cumulative per-device phase attribution, one sample
    // at every span end. `sorted` is (lane, start) ordered; clamp each
    // device's sample time to be monotone in case spans nest.
    let mut cum: BTreeMap<u32, [u64; 3]> = BTreeMap::new();
    let mut last_end: BTreeMap<u32, u64> = BTreeMap::new();
    for span in &sorted {
        let Some(d) = span.device else { continue };
        let slot = match span.kind {
            ObsKind::Kernel => 0,
            ObsKind::RingPopWait => 1,
            ObsKind::RingPush | ObsKind::BorderXfer => 2,
            _ => continue,
        };
        let c = cum.entry(d).or_default();
        c[slot] += span.duration_ns();
        let end = last_end
            .entry(d)
            .and_modify(|e| *e = (*e).max(span.end_ns))
            .or_insert(span.end_ns);
        let ts = *end as f64 / 1_000.0;
        push_event(
            &mut out,
            &format!(
                "{{\"name\":\"stall d{d} (ns)\",\"ph\":\"C\",\"ts\":{ts:.3},\
                 \"pid\":{PID},\"tid\":{d},\"args\":{{\"compute_ns\":{},\
                 \"wait_input_ns\":{},\"wait_output_ns\":{}}}}}",
                c[0], c[1], c[2]
            ),
        );
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn lane_of(span: &ObsSpan, host: u64) -> u64 {
    span.device.map_or(host, u64::from)
}

/// What [`validate`] found in a structurally sound trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCheck {
    /// All events, including metadata.
    pub total_events: usize,
    /// Complete (`"ph":"X"`) span events.
    pub span_events: usize,
    /// Counter (`"ph":"C"`) samples.
    pub counter_events: usize,
    /// Distinct lanes (`tid`) carrying span events.
    pub lanes: BTreeSet<u64>,
    /// Lane names declared by `thread_name` metadata.
    pub lane_names: BTreeMap<u64, String>,
}

/// Structurally validate a Chrome trace document.
///
/// Checks: parseable JSON; top-level `traceEvents` array; every event an
/// object with a `ph` string; every `X` event carries numeric non-negative
/// `ts`/`dur` plus `pid`/`tid`; per-lane `ts` values are monotonically
/// non-decreasing in document order.
pub fn validate(text: &str) -> Result<TraceCheck, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing `traceEvents`")?
        .as_array()
        .ok_or("`traceEvents` is not an array")?;

    let mut check = TraceCheck {
        total_events: events.len(),
        span_events: 0,
        counter_events: 0,
        lanes: BTreeSet::new(),
        lane_names: BTreeMap::new(),
    };
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    // Counter series are monotone per (name, tid) — cumulative attribution.
    let mut last_counter_ts: BTreeMap<(String, u64), f64> = BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let obj = ev
            .as_object()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} has no `ph`"))?;
        match ph {
            "M" => {
                if obj.get("name").and_then(Value::as_str) == Some("thread_name") {
                    let tid = field_u64(obj, "tid", i)?;
                    if let Some(name) = obj
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                    {
                        check.lane_names.insert(tid, name.to_string());
                    }
                }
            }
            "X" => {
                obj.get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i} has no `name`"))?;
                let ts = field_f64(obj, "ts", i)?;
                let dur = field_f64(obj, "dur", i)?;
                field_u64(obj, "pid", i)?;
                let tid = field_u64(obj, "tid", i)?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                if let Some(&prev) = last_ts.get(&tid) {
                    if ts < prev {
                        return Err(format!(
                            "event {i}: lane {tid} timestamps not monotonic ({ts} < {prev})"
                        ));
                    }
                }
                last_ts.insert(tid, ts);
                check.lanes.insert(tid);
                check.span_events += 1;
            }
            "C" => {
                let name = obj
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i} has no `name`"))?;
                let ts = field_f64(obj, "ts", i)?;
                field_u64(obj, "pid", i)?;
                let tid = field_u64(obj, "tid", i)?;
                if ts < 0.0 {
                    return Err(format!("event {i}: negative ts"));
                }
                let args = obj
                    .get("args")
                    .and_then(Value::as_object)
                    .ok_or_else(|| format!("event {i}: counter without args"))?;
                if args.is_empty() {
                    return Err(format!("event {i}: counter with empty args"));
                }
                for (k, v) in args {
                    let v = v
                        .as_f64()
                        .ok_or_else(|| format!("event {i}: counter series `{k}` not numeric"))?;
                    if v < 0.0 {
                        return Err(format!("event {i}: counter series `{k}` negative"));
                    }
                }
                let key = (name.to_string(), tid);
                if let Some(&prev) = last_counter_ts.get(&key) {
                    if ts < prev {
                        return Err(format!(
                            "event {i}: counter `{name}` timestamps not monotonic ({ts} < {prev})"
                        ));
                    }
                }
                last_counter_ts.insert(key, ts);
                check.counter_events += 1;
            }
            other => return Err(format!("event {i}: unsupported phase `{other}`")),
        }
    }
    Ok(check)
}

fn field_f64(obj: &BTreeMap<String, Value>, key: &str, i: usize) -> Result<f64, String> {
    obj.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("event {i}: `{key}` missing or not a number"))
}

fn field_u64(obj: &BTreeMap<String, Value>, key: &str, i: usize) -> Result<u64, String> {
    let v = field_f64(obj, key, i)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("event {i}: `{key}` is not a non-negative integer"));
    }
    Ok(v as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::ObsKind;

    fn span(kind: ObsKind, device: Option<u32>, row: Option<u32>, start: u64, end: u64) -> ObsSpan {
        ObsSpan {
            kind,
            device,
            block_row: row,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn roundtrip_export_validate() {
        let spans = vec![
            span(ObsKind::Kernel, Some(0), Some(0), 0, 1_500),
            span(ObsKind::RingPush, Some(0), Some(0), 1_500, 1_700),
            span(ObsKind::Kernel, Some(1), Some(0), 2_000, 3_000),
            span(ObsKind::Traceback, None, None, 3_000, 5_000),
        ];
        let names = vec!["GTX 680".to_string(), "Tesla C2050".to_string()];
        let text = chrome_trace(&spans, &names);
        let check = validate(&text).expect("emitted trace must validate");
        assert_eq!(check.span_events, 4);
        // One counter sample per device-lane span (host spans carry none).
        assert_eq!(check.counter_events, 3);
        // Lanes: device 0, device 1, host (= 2).
        assert_eq!(check.lanes, BTreeSet::from([0, 1, 2]));
        assert_eq!(check.lane_names.get(&2).map(String::as_str), Some("host"));
        assert!(check.lane_names.get(&0).unwrap().contains("GTX 680"));
    }

    #[test]
    fn counter_tracks_accumulate_phase_time() {
        let spans = vec![
            span(ObsKind::RingPopWait, Some(0), Some(0), 0, 400),
            span(ObsKind::Kernel, Some(0), Some(0), 400, 1_400),
            span(ObsKind::RingPush, Some(0), Some(0), 1_400, 1_600),
            span(ObsKind::Kernel, Some(0), Some(1), 1_600, 2_600),
        ];
        let text = chrome_trace(&spans, &["dev".to_string()]);
        let check = validate(&text).unwrap();
        assert_eq!(check.counter_events, 4);
        // The last counter sample carries the cumulative attribution.
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let last = events
            .iter()
            .rfind(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .unwrap();
        let args = last.get("args").unwrap();
        assert_eq!(args.get("compute_ns").unwrap().as_f64(), Some(2_000.0));
        assert_eq!(args.get("wait_input_ns").unwrap().as_f64(), Some(400.0));
        assert_eq!(args.get("wait_output_ns").unwrap().as_f64(), Some(200.0));
    }

    #[test]
    fn validate_rejects_malformed_counters() {
        // Counter without args.
        assert!(
            validate(r#"{"traceEvents":[{"name":"c","ph":"C","ts":1,"pid":1,"tid":0}]}"#).is_err()
        );
        // Non-numeric series.
        assert!(validate(
            r#"{"traceEvents":[{"name":"c","ph":"C","ts":1,"pid":1,"tid":0,"args":{"x":"y"}}]}"#
        )
        .is_err());
        // Non-monotone samples of one series.
        assert!(validate(
            r#"{"traceEvents":[
                {"name":"c","ph":"C","ts":5,"pid":1,"tid":0,"args":{"x":1}},
                {"name":"c","ph":"C","ts":2,"pid":1,"tid":0,"args":{"x":2}}
            ]}"#
        )
        .is_err());
    }

    #[test]
    fn exporter_sorts_out_of_order_spans() {
        let spans = vec![
            span(ObsKind::Kernel, Some(0), Some(1), 9_000, 10_000),
            span(ObsKind::Kernel, Some(0), Some(0), 1_000, 2_000),
        ];
        let text = chrome_trace(&spans, &["dev".to_string()]);
        validate(&text).expect("sorted on export");
    }

    #[test]
    fn ts_resolution_is_nanoseconds() {
        let spans = vec![span(ObsKind::Kernel, Some(0), None, 1, 2)];
        let text = chrome_trace(&spans, &["dev".to_string()]);
        assert!(text.contains("\"ts\":0.001"), "trace: {text}");
    }

    #[test]
    fn validate_rejects_garbage_and_bad_structure() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"traceEvents": 3}"#).is_err());
        assert!(validate(r#"{"traceEvents": [{"ph":"X"}]}"#).is_err());
        // Negative duration.
        assert!(validate(
            r#"{"traceEvents":[{"name":"k","ph":"X","ts":1,"dur":-2,"pid":1,"tid":0}]}"#
        )
        .is_err());
    }

    #[test]
    fn validate_rejects_non_monotonic_lane() {
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":10,"dur":1,"pid":1,"tid":0},
            {"name":"b","ph":"X","ts":5,"dur":1,"pid":1,"tid":0}
        ]}"#;
        let err = validate(text).unwrap_err();
        assert!(err.contains("monotonic"), "err: {err}");
        // Same timestamps on *different* lanes are fine.
        let ok = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":10,"dur":1,"pid":1,"tid":0},
            {"name":"b","ph":"X","ts":5,"dur":1,"pid":1,"tid":1}
        ]}"#;
        assert!(validate(ok).is_ok());
    }

    #[test]
    fn lane_names_escape_special_characters() {
        let spans = vec![span(ObsKind::Kernel, Some(0), None, 0, 1)];
        let text = chrome_trace(&spans, &["odd \"name\"\\path".to_string()]);
        let check = validate(&text).unwrap();
        assert!(check
            .lane_names
            .get(&0)
            .unwrap()
            .contains("odd \"name\"\\path"));
    }
}
