//! Kernel-launch timing model.

use crate::spec::DeviceSpec;
use crate::time::SimTime;

/// A mid-run clock change on one device: from `after_row` onward the
/// device's effective clock is multiplied by `factor` (0.5 = the board
/// halves its clock, e.g. thermal throttling; 2.0 = it recovers).
///
/// The drift is deliberately a *step*, not a ramp: a step is the hardest
/// case for a static partition (the imbalance arrives all at once) and it
/// keeps the simulated schedule exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDrift {
    /// Platform index of the drifting device.
    pub device: usize,
    /// First block-row computed at the drifted clock.
    pub after_row: usize,
    /// Clock multiplier from `after_row` onward (must be positive).
    pub factor: f64,
}

impl ClockDrift {
    /// The clock multiplier in effect for block-row `row`.
    pub fn scale_at(&self, device: usize, row: usize) -> f64 {
        if device == self.device && row >= self.after_row {
            self.factor
        } else {
            1.0
        }
    }
}

/// Timing model for wavefront kernel launches on one device.
///
/// A launch processes one *external diagonal* of a slab: `blocks`
/// independent tiles totalling `cells` DP cells. Throughput scales with how
/// many SMs the diagonal can feed:
///
/// ```text
/// utilization = min(blocks, sms) / sms
/// time        = launch_overhead + cells / (peak_rate · utilization … )
/// ```
///
/// equivalently `time = overhead + cells / (min(blocks, sms) · per_sm_rate)`
/// — short diagonals (wavefront ramp-up/down, or slabs narrower than the
/// SM count) run proportionally slower, which is exactly the effect that
/// makes *fine-grain* multi-GPU pipelining non-trivial: slicing the matrix
/// into more slabs shortens each device's diagonals.
#[derive(Debug, Clone)]
pub struct KernelModel {
    spec: DeviceSpec,
}

impl KernelModel {
    /// Wrap a device spec.
    pub fn new(spec: DeviceSpec) -> KernelModel {
        KernelModel { spec }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Time for one launch covering `blocks` tiles and `cells` DP cells.
    pub fn launch_time(&self, blocks: u32, cells: u64) -> SimTime {
        self.launch_time_scaled(blocks, cells, 1.0)
    }

    /// [`KernelModel::launch_time`] with the device clock multiplied by
    /// `clock_scale` — the drifting-clock model ([`ClockDrift`]). Launch
    /// overhead is host-side and does not scale with the device clock.
    pub fn launch_time_scaled(&self, blocks: u32, cells: u64, clock_scale: f64) -> SimTime {
        if cells == 0 {
            return SimTime::from_nanos(self.spec.launch_overhead_ns);
        }
        assert!(
            clock_scale.is_finite() && clock_scale > 0.0,
            "clock scale must be positive"
        );
        let active_sms = blocks.clamp(1, self.spec.sms) as f64;
        let per_sm_rate =
            self.spec.clock_mhz as f64 * 1e6 * self.spec.cells_per_cycle_per_sm * clock_scale;
        let secs = cells as f64 / (active_sms * per_sm_rate);
        SimTime::from_nanos(self.spec.launch_overhead_ns) + SimTime::from_secs_f64(secs)
    }

    /// Sustained GCUPS the device achieves on a stream of launches shaped
    /// like this one (reporting helper).
    pub fn sustained_gcups(&self, blocks: u32, cells_per_launch: u64) -> f64 {
        let t = self.launch_time(blocks, cells_per_launch).as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            cells_per_launch as f64 / t / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;

    fn model() -> KernelModel {
        KernelModel::new(DeviceSpec {
            name: "TestBoard".into(),
            sms: 8,
            clock_mhz: 1_000,
            cells_per_cycle_per_sm: 5.0, // peak 40 GCUPS
            mem_mib: 2048,
            link: LinkSpec::pcie2_x16(),
            launch_overhead_ns: 5_000,
        })
    }

    #[test]
    fn full_diagonal_runs_at_peak() {
        let m = model();
        // 8+ blocks saturate all SMs: 40e9 cells ≈ 1 s (+ overhead).
        let t = m.launch_time(8, 40_000_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-4, "t = {t}");
        let t16 = m.launch_time(16, 40_000_000_000);
        assert_eq!(t, t16, "more blocks than SMs adds nothing");
    }

    #[test]
    fn short_diagonal_underutilizes() {
        let m = model();
        let full = m.launch_time(8, 8_000_000);
        let half = m.launch_time(4, 8_000_000);
        let one = m.launch_time(1, 8_000_000);
        assert!(half > full);
        assert!(one > half);
        // 1 block uses 1/8 of the device: ~8× the busy time (overheads equal).
        let busy_full = full.as_nanos() - 5_000;
        let busy_one = one.as_nanos() - 5_000;
        let ratio = busy_one as f64 / busy_full as f64;
        assert!((ratio - 8.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn zero_cells_costs_only_overhead() {
        let m = model();
        assert_eq!(m.launch_time(0, 0), SimTime::from_nanos(5_000));
        assert_eq!(m.launch_time_scaled(0, 0, 0.5), SimTime::from_nanos(5_000));
    }

    #[test]
    fn scaled_launch_halves_throughput_not_overhead() {
        let m = model();
        let full = m.launch_time(8, 8_000_000);
        let slowed = m.launch_time_scaled(8, 8_000_000, 0.5);
        let busy_full = full.as_nanos() - 5_000;
        let busy_slowed = slowed.as_nanos() - 5_000;
        let ratio = busy_slowed as f64 / busy_full as f64;
        assert!((ratio - 2.0).abs() < 1e-6, "ratio = {ratio}");
        assert_eq!(m.launch_time_scaled(8, 8_000_000, 1.0), full);
    }

    #[test]
    fn clock_drift_steps_at_the_given_row() {
        let d = ClockDrift {
            device: 1,
            after_row: 10,
            factor: 0.5,
        };
        assert_eq!(d.scale_at(1, 9), 1.0);
        assert_eq!(d.scale_at(1, 10), 0.5);
        assert_eq!(d.scale_at(1, 500), 0.5);
        // Other devices never drift.
        assert_eq!(d.scale_at(0, 500), 1.0);
    }

    #[test]
    fn sustained_gcups_below_peak_and_increasing_with_launch_size() {
        let m = model();
        let small = m.sustained_gcups(8, 1_000_000);
        let large = m.sustained_gcups(8, 1_000_000_000);
        assert!(small < large);
        assert!(large < 40.0);
        assert!(large > 39.0);
    }
}
