//! Golden observability tests: both backends must export a structurally
//! valid Chrome trace, the threaded stall accounting must balance exactly
//! against wall time, and the deprecated entry points must stay
//! bit-identical to the builder they now wrap.

use megasw::prelude::*;

/// Scalar whole-sequence oracle via the kernel trait (the deprecated
/// `gotoh_best` free function is being phased out).
fn gotoh_best(a: &[u8], b: &[u8], scheme: &ScoreScheme) -> BestCell {
    kernel::scalar().best(a, b, scheme)
}

fn homologous_pair(len: usize, seed: u64) -> (DnaSeq, DnaSeq) {
    let a = ChromosomeGenerator::new(GenerateConfig::sized(len, seed)).generate();
    let (b, _) = DivergenceModel::test_scale(seed + 99).apply(&a);
    (a, b)
}

fn device_names(platform: &Platform) -> Vec<String> {
    platform.devices.iter().map(|d| d.name.clone()).collect()
}

/// Per-lane start times must be monotonic — Perfetto renders out-of-order
/// lanes, Chrome's legacy viewer silently drops them.
fn assert_lane_monotonic(spans: &[ObsSpan]) {
    let mut last: std::collections::BTreeMap<Option<u32>, u64> = Default::default();
    for s in spans {
        assert!(s.end_ns >= s.start_ns, "span ends before it starts: {s:?}");
        let prev = last.entry(s.device).or_insert(0);
        assert!(
            s.start_ns >= *prev,
            "lane {:?} goes backwards: {} after {}",
            s.device,
            s.start_ns,
            prev
        );
        *prev = s.start_ns;
    }
}

#[test]
fn threaded_run_exports_a_valid_chrome_trace() {
    let (a, b) = homologous_pair(4_000, 17);
    let platform = Platform::env2();
    let obs = Recorder::new(ObsLevel::Full);
    let report = PipelineRun::new(a.codes(), b.codes(), &platform)
        .config(RunConfig::paper_default().with_block(128))
        .observer(obs.clone())
        .run()
        .unwrap();
    assert!(report.best.score > 0);

    let spans = obs.spans();
    assert!(spans.iter().any(|s| s.kind == ObsKind::Kernel));
    assert!(spans.iter().any(|s| s.kind == ObsKind::RingPush));
    assert_lane_monotonic(&spans);

    let names = device_names(&platform);
    let check = validate_trace(&chrome_trace(&spans, &names)).unwrap();
    assert_eq!(check.span_events, spans.len());
    // One lane per device — every device of the chain did observable work.
    for d in 0..platform.len() as u64 {
        assert!(check.lanes.contains(&d), "device lane {d} missing");
    }
    // Lane metadata names the boards ("GPU{d} <board name>").
    for (d, name) in names.iter().enumerate() {
        let lane = check.lane_names.get(&(d as u64)).unwrap();
        assert!(lane.contains(name), "lane {d} named {lane:?}");
    }
}

#[test]
fn des_twin_exports_a_valid_chrome_trace() {
    let platform = Platform::env2();
    let obs = Recorder::new(ObsLevel::Full);
    let run = DesSim::new(300_000, 300_000, &platform)
        .config(RunConfig::paper_default())
        .observer(obs.clone())
        .run();

    let spans = obs.spans();
    assert!(spans.iter().any(|s| s.kind == ObsKind::Kernel));
    assert!(spans.iter().any(|s| s.kind == ObsKind::BorderXfer));
    assert_lane_monotonic(&spans);
    // Simulated timestamps live on the simulated clock: nothing outlasts
    // the makespan.
    let makespan = run.report.sim_time.unwrap().as_nanos();
    assert!(spans.iter().all(|s| s.end_ns <= makespan));

    let names = device_names(&platform);
    let check = validate_trace(&chrome_trace(&spans, &names)).unwrap();
    assert_eq!(check.span_events, spans.len());
    for d in 0..platform.len() as u64 {
        assert!(check.lanes.contains(&d), "device lane {d} missing");
    }
}

#[test]
fn threaded_stall_breakdown_balances_against_wall_time() {
    let (a, b) = homologous_pair(3_000, 29);
    let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
        .config(RunConfig::paper_default().with_block(96))
        .run()
        .unwrap();
    let wall_ns = report.wall_time.unwrap().as_nanos() as u64;
    for d in &report.devices {
        let busy_ns = d.wall_busy.unwrap().as_nanos() as u64;
        let bd = d.stall.unwrap();
        // The identity the paper's stall pictures rest on, exact in
        // nanoseconds: startup + input + drain == wall − busy.
        assert_eq!(
            bd.total().as_nanos(),
            wall_ns - busy_ns,
            "device {}: {bd}",
            d.device
        );
    }
}

#[test]
fn attribution_is_visible_in_report_metrics_and_trace() {
    // Acceptance path for the deep-observability layer, on the paper's
    // heterogeneous 3-GPU environment: per-device phase attribution sums
    // to the makespan exactly, flows into the metrics registry (and a
    // conforming Prometheus exposition), and the Chrome trace carries
    // per-device stall counter tracks.
    let (a, b) = homologous_pair(3_000, 41);
    let obs = Recorder::new(ObsLevel::Full);
    let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
        .config(RunConfig::paper_default().with_block(96))
        .observer(obs.clone())
        .run()
        .unwrap();
    let wall_ns = report.wall_time.unwrap().as_nanos() as u64;

    // RunReport: the identity, exact per device.
    let mut agg = 0u64;
    for d in &report.devices {
        let attr = d.attribution.expect("threaded runs attribute");
        assert_eq!(attr.total_ns(), wall_ns, "device {}: {attr}", d.device);
        agg += attr.compute_ns;
    }
    assert!(agg > 0);

    // Metrics: per-device and aggregate series, and the exposition is
    // Prometheus-conformant.
    let m = report.metrics_with_spans(&obs.spans());
    for (i, d) in report.devices.iter().enumerate() {
        let attr = d.attribution.unwrap();
        assert_eq!(
            m.counter(&format!("attr.d{i}.compute_ns")),
            Some(attr.compute_ns)
        );
        assert_eq!(
            m.counter(&format!("attr.d{i}.wait_input_ns")),
            Some(attr.wait_input_ns)
        );
    }
    assert_eq!(m.counter("attr.compute_ns"), Some(agg));
    let exposition = prometheus(&m);
    let summary = megasw::obs::validate_exposition(&exposition).unwrap();
    assert!(summary.families > 0 && summary.samples > 0);
    assert!(exposition.contains("megasw_attr_d0_compute_ns"));

    // Chrome trace: counter tracks per device lane, still a valid trace.
    let trace = chrome_trace(&obs.spans(), &device_names(&Platform::env2()));
    let check = validate_trace(&trace).unwrap();
    assert!(check.counter_events > 0, "no stall counter tracks");
    assert!(trace.contains("stall d0 (ns)"));
}

#[test]
fn metrics_summary_covers_the_run() {
    let (a, b) = homologous_pair(2_000, 37);
    let report = PipelineRun::new(a.codes(), b.codes(), &Platform::env1())
        .config(RunConfig::paper_default().with_block(128))
        .run()
        .unwrap();
    let m = report.metrics();
    assert_eq!(
        m.counter("cells.total"),
        Some(u64::try_from(report.total_cells).unwrap())
    );
    assert_eq!(
        m.counter("bytes.transferred"),
        Some(report.total_bytes_transferred())
    );
    assert!(m.counter("ring.pushed").unwrap() > 0);
    let text = m.to_string();
    assert!(text.contains("gcups.wall"));
    assert!(text.contains("stall.startup_ns"));
}

#[test]
fn builder_variants_stay_bit_identical_to_the_plain_run() {
    let (a, b) = homologous_pair(2_500, 43);
    let cfg = RunConfig::paper_default().with_block(112);
    for platform in [Platform::env1(), Platform::env2()] {
        let plain = PipelineRun::new(a.codes(), b.codes(), &platform)
            .config(cfg.clone())
            .run()
            .unwrap();
        assert_eq!(
            plain.best,
            gotoh_best(a.codes(), b.codes(), &cfg.scheme),
            "platform {}",
            platform.name
        );

        // A plan that never fires: the fault path must not perturb results.
        let plan = FaultPlan {
            device: 0,
            fail_at_block_row: usize::MAX,
        };
        let with_faults = PipelineRun::new(a.codes(), b.codes(), &platform)
            .config(cfg.clone())
            .faults(plan)
            .run()
            .unwrap();
        assert_eq!(with_faults.best, plain.best);
        assert_eq!(with_faults.total_cells, plain.total_cells);

        // Pruning enabled but reported: the best cell never moves.
        let pruned = PipelineRun::new(a.codes(), b.codes(), &platform)
            .config(cfg.clone().with_pruning(PruneMode::Distributed))
            .run()
            .unwrap();
        assert_eq!(pruned.best, plain.best);
        assert!(pruned.pruning.is_some());
    }
}

#[test]
fn obs_level_gates_what_both_backends_record() {
    let (a, b) = homologous_pair(1_200, 51);
    let cfg = RunConfig::paper_default().with_block(64);

    let kernels_only = Recorder::new(ObsLevel::Kernels);
    PipelineRun::new(a.codes(), b.codes(), &Platform::env2())
        .config(cfg.clone())
        .observer(kernels_only.clone())
        .run()
        .unwrap();
    assert!(kernels_only
        .spans()
        .iter()
        .all(|s| s.kind == ObsKind::Kernel));

    let off = Recorder::new(ObsLevel::Off);
    DesSim::new(50_000, 50_000, &Platform::env2())
        .config(cfg)
        .observer(off.clone())
        .run();
    assert!(off.is_empty());
}
