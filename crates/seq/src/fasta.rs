//! Streaming FASTA I/O.
//!
//! Megabase chromosomes arrive as FASTA files; this module reads and writes
//! them without ever holding the text form and the coded form in memory at
//! the same time beyond one I/O buffer. Invalid characters are reported with
//! line/column positions, and record handling tolerates the quirks found in
//! real genome distributions (blank lines, Windows line endings, `>`
//! descriptions with spaces).

use crate::dna::DnaSeq;
use std::io::{self, BufRead, BufReader, Read, Write};

/// A FASTA record: the `>` header (without the marker) and the sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Text after `>` up to the first newline (may contain spaces).
    pub header: String,
    /// The decoded sequence.
    pub seq: DnaSeq,
}

impl FastaRecord {
    /// The record id — the header token before the first whitespace.
    pub fn id(&self) -> &str {
        self.header.split_whitespace().next().unwrap_or("")
    }
}

/// Errors produced by the FASTA reader.
#[derive(Debug)]
pub enum FastaError {
    Io(io::Error),
    /// `(line, column, byte)` of the offending character (1-based line).
    InvalidCharacter {
        line: usize,
        column: usize,
        byte: u8,
    },
    /// Sequence data before any `>` header.
    MissingHeader {
        line: usize,
    },
}

impl std::fmt::Display for FastaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "I/O error: {e}"),
            FastaError::InvalidCharacter { line, column, byte } => write!(
                f,
                "invalid sequence character {:?} at line {line}, column {column}",
                *byte as char
            ),
            FastaError::MissingHeader { line } => {
                write!(f, "sequence data before any '>' header at line {line}")
            }
        }
    }
}

impl std::error::Error for FastaError {}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Read every record from a FASTA stream.
pub fn read_fasta<R: Read>(reader: R) -> Result<Vec<FastaRecord>, FastaError> {
    let mut records = Vec::new();
    let mut current: Option<FastaRecord> = None;
    let buf = BufReader::new(reader);

    for (line_no, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('>') {
            if let Some(rec) = current.take() {
                records.push(rec);
            }
            current = Some(FastaRecord {
                header: rest.trim().to_string(),
                seq: DnaSeq::new(),
            });
        } else {
            let rec = current
                .as_mut()
                .ok_or(FastaError::MissingHeader { line: line_no + 1 })?;
            for (col, &b) in line.as_bytes().iter().enumerate() {
                match crate::alphabet::Nucleotide::from_ascii(b) {
                    Some(n) => rec.seq.push(n),
                    None => {
                        return Err(FastaError::InvalidCharacter {
                            line: line_no + 1,
                            column: col + 1,
                            byte: b,
                        })
                    }
                }
            }
        }
    }
    if let Some(rec) = current.take() {
        records.push(rec);
    }
    Ok(records)
}

/// Read exactly one record; errors if the stream holds zero records, returns
/// the first if it holds several (chromosome files have one record).
pub fn read_single_fasta<R: Read>(reader: R) -> Result<FastaRecord, FastaError> {
    let mut records = read_fasta(reader)?;
    if records.is_empty() {
        return Err(FastaError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "FASTA stream contains no records",
        )));
    }
    Ok(records.remove(0))
}

/// Read every record from a FASTA file on disk. Convenience wrapper over
/// [`read_fasta`] for the batch-manifest path, which opens many files.
pub fn read_fasta_path<P: AsRef<std::path::Path>>(path: P) -> Result<Vec<FastaRecord>, FastaError> {
    read_fasta(std::fs::File::open(path)?)
}

/// Read exactly one record from a FASTA file on disk (first record if the
/// file holds several). Convenience wrapper over [`read_single_fasta`].
pub fn read_single_fasta_path<P: AsRef<std::path::Path>>(
    path: P,
) -> Result<FastaRecord, FastaError> {
    read_single_fasta(std::fs::File::open(path)?)
}

/// Read every record from FASTA text already in memory — the shape of an
/// HTTP request body posted to the alignment service, where there is no
/// file to stream from.
pub fn read_fasta_str(text: &str) -> Result<Vec<FastaRecord>, FastaError> {
    read_fasta(text.as_bytes())
}

/// Read exactly one record from in-memory FASTA text (first record if the
/// text holds several). Convenience wrapper over [`read_single_fasta`].
pub fn read_single_fasta_str(text: &str) -> Result<FastaRecord, FastaError> {
    read_single_fasta(text.as_bytes())
}

/// Write records in FASTA format with the given line width.
pub fn write_fasta<W: Write>(
    mut writer: W,
    records: &[FastaRecord],
    line_width: usize,
) -> io::Result<()> {
    let width = line_width.max(1);
    let mut line = Vec::with_capacity(width);
    for rec in records {
        writeln!(writer, ">{}", rec.header)?;
        for chunk_start in (0..rec.seq.len()).step_by(width) {
            let end = (chunk_start + width).min(rec.seq.len());
            line.clear();
            for i in chunk_start..end {
                line.push(rec.seq.get(i).expect("in range").to_ascii());
            }
            writer.write_all(&line)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_single_record() {
        let text = ">chr1 test chromosome\nACGT\nACGT\n";
        let recs = read_fasta(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].header, "chr1 test chromosome");
        assert_eq!(recs[0].id(), "chr1");
        assert_eq!(recs[0].seq.to_ascii_string(), "ACGTACGT");
    }

    #[test]
    fn parse_multi_record_with_blank_lines_and_crlf() {
        let text = ">a\r\nACGT\r\n\r\n>b\r\nTTTT\r\nNN\r\n";
        let recs = read_fasta(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq.to_ascii_string(), "ACGT");
        assert_eq!(recs[1].seq.to_ascii_string(), "TTTTNN");
    }

    #[test]
    fn lowercase_and_iupac_accepted() {
        let text = ">x\nacgtry\n";
        let recs = read_fasta(text.as_bytes()).unwrap();
        assert_eq!(recs[0].seq.to_ascii_string(), "ACGTNN");
    }

    #[test]
    fn invalid_character_position_reported() {
        let text = ">x\nACGT\nAC!T\n";
        match read_fasta(text.as_bytes()) {
            Err(FastaError::InvalidCharacter { line, column, byte }) => {
                assert_eq!((line, column, byte), (3, 3, b'!'));
            }
            other => panic!("expected InvalidCharacter, got {other:?}"),
        }
    }

    #[test]
    fn sequence_before_header_rejected() {
        let text = "ACGT\n>x\nACGT\n";
        match read_fasta(text.as_bytes()) {
            Err(FastaError::MissingHeader { line }) => assert_eq!(line, 1),
            other => panic!("expected MissingHeader, got {other:?}"),
        }
    }

    #[test]
    fn empty_stream_gives_no_records() {
        assert!(read_fasta(&b""[..]).unwrap().is_empty());
        assert!(read_single_fasta(&b""[..]).is_err());
    }

    #[test]
    fn empty_record_allowed() {
        let text = ">empty\n>full\nAC\n";
        let recs = read_fasta(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].seq.is_empty());
    }

    #[test]
    fn write_then_read_roundtrip() {
        let recs = vec![
            FastaRecord {
                header: "chrTest synthetic".to_string(),
                seq: DnaSeq::from_str_unwrap("ACGTNACGTNACGTNACGTN"),
            },
            FastaRecord {
                header: "second".to_string(),
                seq: DnaSeq::from_str_unwrap("TTT"),
            },
        ];
        let mut out = Vec::new();
        write_fasta(&mut out, &recs, 7).unwrap();
        let back = read_fasta(&out[..]).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn write_wraps_lines() {
        let recs = vec![FastaRecord {
            header: "w".to_string(),
            seq: DnaSeq::from_str_unwrap("ACGTACGTAC"),
        }];
        let mut out = Vec::new();
        write_fasta(&mut out, &recs, 4).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, ">w\nACGT\nACGT\nAC\n");
    }

    #[test]
    fn str_helpers_match_reader_path() {
        let text = ">a desc\nACGT\nNN\n>b\nTT\n";
        let recs = read_fasta_str(text).unwrap();
        assert_eq!(recs, read_fasta(text.as_bytes()).unwrap());
        let one = read_single_fasta_str(text).unwrap();
        assert_eq!(one, recs[0]);
        assert!(read_single_fasta_str("").is_err());
    }

    #[test]
    fn roundtrip_generated_chromosome() {
        use crate::generate::{ChromosomeGenerator, GenerateConfig};
        let seq = ChromosomeGenerator::new(GenerateConfig::sized(10_000, 15)).generate();
        let recs = vec![FastaRecord {
            header: "gen".into(),
            seq: seq.clone(),
        }];
        let mut out = Vec::new();
        write_fasta(&mut out, &recs, 60).unwrap();
        let back = read_single_fasta(&out[..]).unwrap();
        assert_eq!(back.seq, seq);
    }
}
